module Policy = Pift_core.Policy
module App = Pift_workloads.App

type confusion = { tp : int; fp : int; tn : int; fn : int }

let total c = c.tp + c.fp + c.tn + c.fn

let accuracy c =
  if total c = 0 then 0.
  else float_of_int (c.tp + c.tn) /. float_of_int (total c)

let fp_rate c =
  if c.fp + c.tn = 0 then 0. else float_of_int c.fp /. float_of_int (c.fp + c.tn)

let fn_rate c =
  if c.fn + c.tp = 0 then 0. else float_of_int c.fn /. float_of_int (c.fn + c.tp)

type sweep = {
  apps : int;
  nis : int list;
  nts : int list;
  cells : ((int * int) * confusion) list;
}

let classify ~leaky ~flagged c =
  match (leaky, flagged) with
  | true, true -> { c with tp = c.tp + 1 }
  | true, false -> { c with fn = c.fn + 1 }
  | false, true -> { c with fp = c.fp + 1 }
  | false, false -> { c with tn = c.tn + 1 }

let empty = { tp = 0; fp = 0; tn = 0; fn = 0 }

let evaluate ?backend ~policy apps =
  List.fold_left
    (fun acc (app : App.t) ->
      let recorded = Recorded.record app in
      let replay = Recorded.replay ?backend ~policy recorded in
      classify ~leaky:app.App.leaky ~flagged:replay.Recorded.flagged acc)
    empty apps

(* --- attribution accuracy ----------------------------------------------- *)

type attribution_class = Exact | Over | Under | Mixed

type attribution_row = {
  at_app : string;
  at_check : int;
  at_sink : string;
  at_pift : string list;
  at_dift : string list;
  at_class : attribution_class;
  at_jaccard : float;
}

type attribution = {
  at_rows : attribution_row list;
  at_exact : int;
  at_over : int;
  at_under : int;
  at_mixed : int;
  at_mean_jaccard : float;
}

let class_label = function
  | Exact -> "exact"
  | Over -> "over"
  | Under -> "under"
  | Mixed -> "mixed"

(* Sorted-uniq string lists as sets. *)
let subset a b = List.for_all (fun x -> List.mem x b) a

let classify_sets ~pift ~dift =
  if pift = dift then Exact
  else if subset dift pift then Over
  else if subset pift dift then Under
  else Mixed

let jaccard a b =
  match (a, b) with
  | [], [] -> 1.
  | _ ->
      let inter = List.length (List.filter (fun x -> List.mem x b) a) in
      let union =
        List.length (List.sort_uniq String.compare (List.rev_append a b))
      in
      float_of_int inter /. float_of_int union

(* The attribution question: when both trackers flag a sink (a true
   positive), does PIFT's predicted origin set name the same sources the
   exact full-DIFT replay does?  Over-attribution (a superset) is the
   expected failure mode of window-based prediction; under-attribution
   would mean a real source went missing. *)
let attribution ?backend ~policy apps =
  let rows =
    List.concat_map
      (fun (app : App.t) ->
        let recorded = Recorded.record app in
        let replay =
          Recorded.replay ?backend ~with_origins:true ~policy recorded
        in
        let dift = Recorded.replay_dift ?backend ~with_origins:true recorded in
        List.concat
          (List.mapi
             (fun i
                  ((p : Recorded.origin_verdict),
                   (d : Recorded.origin_verdict)) ->
               if p.Recorded.ov_flagged && d.Recorded.ov_flagged then
                 let pift = p.Recorded.ov_origins
                 and dift = d.Recorded.ov_origins in
                 [
                   {
                     at_app = app.App.name;
                     at_check = i + 1;
                     at_sink = p.Recorded.ov_kind;
                     at_pift = pift;
                     at_dift = dift;
                     at_class = classify_sets ~pift ~dift;
                     at_jaccard = jaccard pift dift;
                   };
                 ]
               else [])
             (List.combine replay.Recorded.origins dift.Recorded.dift_origins)))
      apps
  in
  let count cls =
    List.length (List.filter (fun r -> r.at_class = cls) rows)
  in
  let mean_jaccard =
    match rows with
    | [] -> 0.
    | _ ->
        List.fold_left (fun acc r -> acc +. r.at_jaccard) 0. rows
        /. float_of_int (List.length rows)
  in
  {
    at_rows = rows;
    at_exact = count Exact;
    at_over = count Over;
    at_under = count Under;
    at_mixed = count Mixed;
    at_mean_jaccard = mean_jaccard;
  }

let render_attribution at ppf () =
  let set = function [] -> "-" | l -> String.concat "," l in
  let app_w =
    List.fold_left
      (fun acc r -> max acc (String.length r.at_app))
      (String.length "app") at.at_rows
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Attribution accuracy — PIFT origin sets vs full-DIFT ground truth@,";
  Format.fprintf ppf "%-*s  %-5s  %-6s  %-24s  %-24s  %-6s  %s@," app_w "app"
    "check" "sink" "pift origins" "dift origins" "class" "jaccard";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-*s  %-5d  %-6s  %-24s  %-24s  %-6s  %.2f@," app_w
        r.at_app r.at_check r.at_sink (set r.at_pift) (set r.at_dift)
        (class_label r.at_class) r.at_jaccard)
    at.at_rows;
  Format.fprintf ppf
    "%d true-positive sinks: %d exact, %d over, %d under, %d mixed; mean \
     Jaccard %.3f@,"
    (List.length at.at_rows)
    at.at_exact at.at_over at.at_under at.at_mixed at.at_mean_jaccard;
  Format.fprintf ppf "@]"

let attribution_json at =
  let module Json = Pift_obs.Json in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ( "pift_attribution",
        Json.Obj
          [
            ("sinks", Json.Int (List.length at.at_rows));
            ("exact", Json.Int at.at_exact);
            ("over", Json.Int at.at_over);
            ("under", Json.Int at.at_under);
            ("mixed", Json.Int at.at_mixed);
            ("mean_jaccard", Json.Float at.at_mean_jaccard);
          ] );
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("app", Json.String r.at_app);
                   ("check", Json.Int r.at_check);
                   ("sink", Json.String r.at_sink);
                   ("pift", strings r.at_pift);
                   ("dift", strings r.at_dift);
                   ("class", Json.String (class_label r.at_class));
                   ("jaccard", Json.Float r.at_jaccard);
                 ])
             at.at_rows) );
    ]

let default_nis = List.init 20 (fun i -> i + 1)
let default_nts = List.init 10 (fun i -> i + 1)

(* Per-worker sweep meters, resolved once per registry so the replay loop
   pays one counter write per replay. *)
type meters = {
  m_apps : Pift_obs.Metric.Counter.t;
  m_replays : Pift_obs.Metric.Counter.t;
  m_insns : Pift_obs.Metric.Histogram.t;
}

let meters_of registry =
  {
    m_apps =
      Pift_obs.Registry.counter registry ~help:"apps recorded by the sweep"
        "pift_sweep_apps_total";
    m_replays =
      Pift_obs.Registry.counter registry
        ~help:"tracker replays across the NIxNT grid"
        "pift_sweep_replays_total";
    m_insns =
      Pift_obs.Registry.histogram registry
        ~help:"instructions per recorded app trace" "pift_sweep_trace_insns";
  }

(* Recording runs on the pool (each app builds its own VM, trace, and
   heap), and the NIxNT grid then replays one cell per work item against
   the shared read-only recordings.  Each worker slot owns a private
   metrics registry — merged into the caller's registry afterwards in
   slot order — so the counters stay lock-free and the merged snapshot
   is identical whatever the schedule.  Cells come back sorted by
   (ni, nt): the Hashtbl.fold order of the old implementation leaked
   hashing order into the result, which both broke run-to-run
   reproducibility and made parallel merges order-dependent. *)
let sweep ?backend ?(nis = default_nis) ?(nts = default_nts) ?progress
    ?on_cell ?metrics ?(rings = [||]) ?(telems = [||]) ?(profiles = [||])
    ?(jobs = 1) ?(with_origins = false) apps =
  Pift_par.Pool.with_pool ~jobs ~rings ~profiles (fun pool ->
      let slots = Pift_par.Pool.jobs pool in
      let ring worker =
        if worker < Array.length rings then Some rings.(worker) else None
      in
      (* Telemetry and profiler instances follow the same per-slot
         single-writer discipline as rings: each worker only ever touches
         its own slot's instance, so the hot path stays lock-free and the
         merged series/stacks are combined after the parallel region. *)
      let telem worker =
        if worker < Array.length telems then Some telems.(worker) else None
      in
      let profile worker =
        if worker < Array.length profiles then Some profiles.(worker)
        else None
      in
      let worker_registries =
        match metrics with
        | None -> [||]
        | Some _ ->
            Array.init slots (fun _ -> Pift_obs.Registry.create ())
      in
      let worker_meters = Array.map meters_of worker_registries in
      let apps_arr = Array.of_list apps in
      let n = Array.length apps_arr in
      let recorded_count = Atomic.make 0 in
      let progress_mu = Mutex.create () in
      let recordings =
        Pift_par.Pool.map_slots pool
          ~f:(fun ~worker _ (app : App.t) ->
            (* Span names are built off the hot path (once per app /
               cell); events themselves stay allocation-free. *)
            let span =
              Option.map
                (fun r ->
                  let name = "record:" ^ app.App.name in
                  Pift_obs.Flight.begin_ r name;
                  (r, name))
                (ring worker)
            in
            let recorded = Recorded.record ?profile:(profile worker) app in
            (match span with
            | None -> ()
            | Some (r, name) -> Pift_obs.Flight.end_ r name);
            if worker_meters <> [||] then begin
              let m = worker_meters.(worker) in
              Pift_obs.Metric.Counter.incr m.m_apps;
              Pift_obs.Metric.Histogram.observe m.m_insns
                (Pift_trace.Trace.length recorded.Recorded.trace)
            end;
            (match progress with
            | None -> ()
            | Some f ->
                let done_ = 1 + Atomic.fetch_and_add recorded_count 1 in
                Mutex.lock progress_mu;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock progress_mu)
                  (fun () -> f done_ n));
            recorded)
          apps_arr
      in
      let points =
        Array.of_list
          (List.concat_map
             (fun ni -> List.map (fun nt -> (ni, nt)) nts)
             nis)
      in
      let total_cells = Array.length points in
      let cells_done = Atomic.make 0 in
      let confusions =
        Pift_par.Pool.map_slots pool
          ~f:(fun ~worker _ (ni, nt) ->
            let ring = ring worker in
            let span_name =
              match ring with
              | None -> ""
              | Some r ->
                  let name = Printf.sprintf "cell(%d,%d)" ni nt in
                  Pift_obs.Flight.begin_ r name;
                  name
            in
            let policy = Policy.make ~ni ~nt () in
            let c = ref empty in
            let peak_bytes = ref 0 and peak_ranges = ref 0 in
            Array.iteri
              (fun i recorded ->
                let replay =
                  Recorded.replay ?backend ?telemetry:(telem worker)
                    ?profile:(profile worker) ~with_origins ~policy recorded
                in
                if worker_meters <> [||] then
                  Pift_obs.Metric.Counter.incr
                    worker_meters.(worker).m_replays;
                let st = replay.Recorded.stats in
                if st.Pift_core.Tracker.max_tainted_bytes > !peak_bytes then
                  peak_bytes := st.Pift_core.Tracker.max_tainted_bytes;
                if st.Pift_core.Tracker.max_ranges > !peak_ranges then
                  peak_ranges := st.Pift_core.Tracker.max_ranges;
                c :=
                  classify ~leaky:apps_arr.(i).App.leaky
                    ~flagged:replay.Recorded.flagged !c)
              recordings;
            (match ring with
            | None -> ()
            | Some r ->
                (* Per-cell counter tracks: the worst replay's peak
                   tainted footprint, sampled once per finished cell so
                   a 200-cell sweep cannot flood the ring. *)
                Pift_obs.Flight.sample r "max_tainted_bytes"
                  (float_of_int !peak_bytes);
                Pift_obs.Flight.sample r "max_ranges"
                  (float_of_int !peak_ranges);
                Pift_obs.Flight.end_ r span_name);
            (match on_cell with
            | None -> ()
            | Some f ->
                let done_ = 1 + Atomic.fetch_and_add cells_done 1 in
                Mutex.lock progress_mu;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock progress_mu)
                  (fun () -> f done_ total_cells));
            !c)
          points
      in
      (match metrics with
      | None -> ()
      | Some registry ->
          Array.iter
            (fun wr -> Pift_obs.Registry.merge ~into:registry wr)
            worker_registries);
      let cells =
        List.sort
          (fun (a, _) (b, _) -> compare (a : int * int) b)
          (Array.to_list (Array.map2 (fun p c -> (p, c)) points confusions))
      in
      { apps = n; nis; nts; cells })

let cell sweep ~ni ~nt =
  match List.assoc_opt (ni, nt) sweep.cells with
  | Some c -> c
  | None -> invalid_arg "Accuracy.cell: (ni, nt) outside the sweep"

let misclassified ?backend ~policy apps =
  List.filter_map
    (fun (app : App.t) ->
      let recorded = Recorded.record app in
      let replay = Recorded.replay ?backend ~policy recorded in
      match (app.App.leaky, replay.Recorded.flagged) with
      | true, false -> Some (app.App.name, `False_negative)
      | false, true -> Some (app.App.name, `False_positive)
      | true, true | false, false -> None)
    apps

let render sweep ppf () =
  (* Index the cells once: a List.assoc per heatmap cell is O(cells^2)
     across the render. *)
  let index = Hashtbl.create (List.length sweep.cells) in
  List.iter (fun (k, c) -> Hashtbl.replace index k c) sweep.cells;
  let cell ~ni ~nt =
    match Hashtbl.find_opt index (ni, nt) with
    | Some c -> c
    | None -> invalid_arg "Accuracy.render: (ni, nt) outside the sweep"
  in
  Pift_util.Textplot.heatmap
    ~title:
      (Printf.sprintf
         "Fig. 11 — accuracy (%%) over %d DroidBench apps, NI columns x NT \
          rows"
         sweep.apps)
    ~row_label:"NT" ~col_label:"NI" ~rows:sweep.nts ~cols:sweep.nis
    (fun ~row ~col -> 100. *. accuracy (cell ~ni:col ~nt:row))
    ppf ()
