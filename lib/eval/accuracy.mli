(** Accuracy evaluation over labelled apps — the machinery behind Fig. 11
    and the §5.1 headline numbers (98% accuracy, 0% FP, 2% FN at
    NI=13, NT=3). *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

val accuracy : confusion -> float
(** (TP + TN) / total. *)

val fp_rate : confusion -> float
(** FP / (FP + TN); 0 when there are no negatives. *)

val fn_rate : confusion -> float

type sweep = {
  apps : int;
  nis : int list;
  nts : int list;
  cells : ((int * int) * confusion) list;
      (** keyed by (ni, nt), sorted ascending by key *)
}

val evaluate :
  ?backend:Pift_core.Store.backend ->
  policy:Pift_core.Policy.t -> Pift_workloads.App.t list -> confusion
(** Record and replay each app once at the given policy.  [backend]
    picks the taint-store representation for the replays; confusions
    are identical whichever exact backend runs. *)

(** {1 Attribution accuracy}

    Beyond the boolean verdict: when a sink is correctly flagged, does
    PIFT's predicted origin set ({!Pift_core.Provenance} sidecar) name
    the same sources as an exact full-DIFT replay
    ({!Pift_baseline.Full_dift} with origin mirroring)? *)

type attribution_class =
  | Exact  (** predicted set equals the exact set *)
  | Over  (** strict superset — windowed prediction over-attributed *)
  | Under  (** strict subset — a real source went missing *)
  | Mixed  (** incomparable sets *)

type attribution_row = {
  at_app : string;
  at_check : int;  (** 1-based sink-check index within the app *)
  at_sink : string;  (** sink kind *)
  at_pift : string list;  (** predicted origin set, sorted *)
  at_dift : string list;  (** exact origin set, sorted *)
  at_class : attribution_class;
  at_jaccard : float;  (** |∩| / |∪|; 1 when both sets are empty *)
}

type attribution = {
  at_rows : attribution_row list;
      (** one row per sink check flagged by {e both} trackers (true
          positives), in app order then check order *)
  at_exact : int;
  at_over : int;
  at_under : int;
  at_mixed : int;
  at_mean_jaccard : float;  (** 0 when there are no rows *)
}

val attribution :
  ?backend:Pift_core.Store.backend ->
  policy:Pift_core.Policy.t ->
  Pift_workloads.App.t list ->
  attribution
(** Record each app once, replay it under PIFT with the provenance
    sidecar and under full DIFT with exact origin mirroring, and compare
    origin sets on every sink check both trackers flag. *)

val class_label : attribution_class -> string
(** ["exact"], ["over"], ["under"], ["mixed"]. *)

val render_attribution : attribution -> Format.formatter -> unit -> unit
(** Per-sink comparison table plus the class counts and mean Jaccard. *)

val attribution_json : attribution -> Pift_obs.Json.t
(** Machine-readable export; top-level key ["pift_attribution"] is the
    sniffing handle {!Pift_obs.Sink.classify} keys on. *)

val default_nis : int list
(** NI = 1..20, the paper's Fig. 11 columns. *)

val default_nts : int list
(** NT = 1..10, the paper's Fig. 11 rows. *)

val sweep :
  ?backend:Pift_core.Store.backend ->
  ?nis:int list ->
  ?nts:int list ->
  ?progress:(int -> int -> unit) ->
  ?on_cell:(int -> int -> unit) ->
  ?metrics:Pift_obs.Registry.t ->
  ?rings:Pift_obs.Flight.t array ->
  ?telems:Pift_obs.Telemetry.t array ->
  ?profiles:Pift_obs.Profile.t array ->
  ?jobs:int ->
  ?with_origins:bool ->
  Pift_workloads.App.t list ->
  sweep
(** Full NI×NT grid (defaults NI=1..20, NT=1..10, the paper's 200
    combinations).  Each app is executed once and replayed per cell.
    [progress done total] is called per app recorded, [on_cell done
    total] per grid cell finished (both under a lock when parallel, in
    completion order — the hook behind the live progress line).  With
    [metrics], [pift_sweep_*] counters track recorded apps and grid
    replays, and a log2 histogram collects per-app trace lengths.
    [rings] (one flight-recorder ring per worker slot, also handed to
    the pool for chunk spans) adds a ["record:<app>"] span per
    recording and, per grid cell, a ["cell(ni,nt)"] span plus
    ["max_tainted_bytes"]/["max_ranges"] counter samples — one sample
    per cell, not per event, so rings never flood mid-sweep.  [telems]
    (one {!Pift_obs.Telemetry} instance per worker slot) threads the
    continuous-telemetry ring through every grid replay: each cell's
    tracker re-binds the snapshot sources on its slot's instance, and
    snapshots fire on the event-count / wall-clock cadence across the
    whole sweep.  [profiles] (one {!Pift_obs.Profile} per slot, also
    handed to the pool) attributes wall time to
    [pool;replay;tracker;store] (and [pool;record;vm;cpu]) folded
    stacks.  Both follow the per-slot single-writer discipline; neither
    changes cells, metrics, or stdout.  [jobs]
    (default 1) sizes the [Pift_par] domain pool the recordings and
    grid cells run on; the result — cells and merged metrics both — is
    identical for every [jobs] value, for every taint-store [backend],
    and with tracing on or off.  [with_origins] (default off) threads
    the provenance sidecar through every grid replay; verdicts are
    byte-identical with it on or off, so the sweep result is too — the
    flag only measures the sidecar's cost under the full grid. *)

val cell : sweep -> ni:int -> nt:int -> confusion

val misclassified :
  ?backend:Pift_core.Store.backend ->
  policy:Pift_core.Policy.t ->
  Pift_workloads.App.t list ->
  (string * [ `False_positive | `False_negative ]) list
(** Names of the apps the policy gets wrong. *)

val render : sweep -> Format.formatter -> unit -> unit
(** Fig. 11-style accuracy heatmap (percent). *)
