module Range = Pift_util.Range
module Trace = Pift_trace.Trace
module Cpu = Pift_machine.Cpu
module Env = Pift_runtime.Env
module Manager = Pift_runtime.Manager
module Vm = Pift_dalvik.Vm
module App = Pift_workloads.App
module Tracker = Pift_core.Tracker
module Store = Pift_core.Store
module Full_dift = Pift_baseline.Full_dift

type marker =
  | Source of { kind : string; range : Range.t }
  | Sink of { kind : string; ranges : Range.t list }

type t = {
  name : string;
  trace : Trace.t;
  markers : (int * marker) array;
  pid : int;
  bytecodes : int;
}

let record ?mode ?metrics ?flight ?profile (app : App.t) =
  Pift_obs.Profile.span profile "record" @@ fun () ->
  let trace = Trace.create () in
  let env = Env.create ?metrics ~sink:(Trace.sink trace) () in
  let markers = ref [] in
  let seq () = Cpu.global_seq env.Env.cpu in
  let stamp name =
    match flight with
    | None -> ()
    | Some f -> Pift_obs.Flight.instant f name
  in
  Manager.subscribe_sources env.Env.manager (fun ~pid:_ ~kind r ->
      stamp "source";
      markers := (seq (), Source { kind; range = r }) :: !markers);
  Manager.subscribe_checks env.Env.manager (fun ~pid:_ ~kind ranges ->
      stamp "sink-check";
      markers := (seq (), Sink { kind; ranges }) :: !markers);
  let natives = Pift_runtime.Api.registry @ app.App.natives in
  let vm =
    Vm.create ?mode ~natives ?metrics ?flight ?profile env (app.App.program ())
  in
  (match Vm.run vm with `Ok | `Uncaught _ -> ());
  {
    name = app.App.name;
    trace;
    markers = Array.of_list (List.rev !markers);
    pid = Env.pid env;
    bytecodes = Vm.bytecodes_executed vm;
  }

type verdict = { kind : string; flagged : bool }

type origin_verdict = {
  ov_kind : string;
  ov_flagged : bool;
  ov_origins : string list;
}

type replay = {
  verdicts : verdict list;
  flagged : bool;
  stats : Tracker.stats;
  bytes_series : Pift_util.Series.t;
  ops_series : Pift_util.Series.t;
  origins : origin_verdict list;
}

(* Walk events and markers in global-sequence order, calling [on_marker]
   for every marker once all events up to its timestamp have been fed. *)
let interleave t ~observe ~on_marker =
  let mi = ref 0 in
  let n = Array.length t.markers in
  let apply_until seq =
    while !mi < n && fst t.markers.(!mi) <= seq do
      on_marker (snd t.markers.(!mi));
      incr mi
    done
  in
  apply_until 0;
  Trace.iter
    (fun e ->
      observe e;
      apply_until e.Pift_trace.Event.seq)
    t.trace;
  apply_until max_int

type item = Item_event of Pift_trace.Event.t | Item_marker of int * marker

(* Pull-stream twin of [interleave]: the same order, one item per call.
   A marker is due once every event up to its timestamp has been
   emitted, so markers between two events surface after the later one —
   exactly where [interleave] fires [on_marker] and where the trace
   writers serialize them.  The engine's ingest front merges several of
   these streams without materialising any of them. *)
let items t =
  let mi = ref 0 and ei = ref 0 in
  let nm = Array.length t.markers in
  let ne = Trace.length t.trace in
  let last_seq = ref 0 in
  fun () ->
    if !mi < nm && fst t.markers.(!mi) <= !last_seq then begin
      let mseq, m = t.markers.(!mi) in
      incr mi;
      Some (Item_marker (mseq, m))
    end
    else if !ei < ne then begin
      let e = Trace.get t.trace !ei in
      incr ei;
      last_seq := e.Pift_trace.Event.seq;
      Some (Item_event e)
    end
    else if !mi < nm then begin
      let mseq, m = t.markers.(!mi) in
      incr mi;
      Some (Item_marker (mseq, m))
    end
    else None

let replay ?(backend = Store.Functional) ?store ?metrics ?flight ?telemetry
    ?profile ?(with_origins = false) ~policy t =
  Pift_obs.Profile.span profile "replay" @@ fun () ->
  let store =
    match store with
    | Some store -> store
    | None -> Store.create ~backend ()
  in
  let store =
    match metrics with
    | Some registry -> Store.with_metrics registry store
    | None -> store
  in
  (* The sidecar shares the replay's policy and backend; sink-time origin
     sets must be captured at the sink check (later untainting can erase
     them), hence the [origin_verdict] list rather than a final query. *)
  let prov =
    if with_origins then
      Some (Pift_core.Provenance.create ~policy ~backend ())
    else None
  in
  let tracker =
    Tracker.create ~policy ~store ?metrics ?flight ?prov ?telemetry ?profile ()
  in
  let verdicts = ref [] in
  let origin_verdicts = ref [] in
  let on_marker = function
    | Source { kind; range } ->
        Tracker.taint_source ~kind tracker ~pid:t.pid range
    | Sink { kind; ranges } ->
        let flagged =
          List.exists (fun r -> Tracker.is_tainted tracker ~pid:t.pid r) ranges
        in
        verdicts := { kind; flagged } :: !verdicts;
        if with_origins then begin
          let origins =
            List.sort_uniq String.compare
              (List.concat_map
                 (fun r -> Tracker.origins_of tracker ~pid:t.pid r)
                 ranges)
          in
          origin_verdicts :=
            { ov_kind = kind; ov_flagged = flagged; ov_origins = origins }
            :: !origin_verdicts
        end
  in
  interleave t ~observe:(Tracker.observe tracker) ~on_marker;
  let verdicts = List.rev !verdicts in
  {
    verdicts;
    flagged = List.exists (fun (v : verdict) -> v.flagged) verdicts;
    stats = Tracker.stats tracker;
    bytes_series = Tracker.tainted_bytes_series tracker;
    ops_series = Tracker.ops_series tracker;
    origins = List.rev !origin_verdicts;
  }

type dift_replay = {
  dift_verdicts : verdict list;
  dift_flagged : bool;
  propagations : int;
  dift_origins : origin_verdict list;
}

let replay_dift ?(backend = Store.Functional) ?(with_origins = false) t =
  let dift = Full_dift.create ~backend ~track_origins:with_origins () in
  let verdicts = ref [] in
  let origin_verdicts = ref [] in
  let on_marker = function
    | Source { kind; range } ->
        Full_dift.taint_source ~kind dift ~pid:t.pid range
    | Sink { kind; ranges } ->
        let flagged =
          List.exists
            (fun r -> Full_dift.is_tainted dift ~pid:t.pid r)
            ranges
        in
        verdicts := { kind; flagged } :: !verdicts;
        if with_origins then begin
          let origins =
            List.sort_uniq String.compare
              (List.concat_map
                 (fun r -> Full_dift.origins_of dift ~pid:t.pid r)
                 ranges)
          in
          origin_verdicts :=
            { ov_kind = kind; ov_flagged = flagged; ov_origins = origins }
            :: !origin_verdicts
        end
  in
  interleave t ~observe:(Full_dift.observe dift) ~on_marker;
  let dift_verdicts = List.rev !verdicts in
  {
    dift_verdicts;
    dift_flagged = List.exists (fun (v : verdict) -> v.flagged) dift_verdicts;
    propagations = Full_dift.propagations dift;
    dift_origins = List.rev !origin_verdicts;
  }

type provenance_verdict = { pv_kind : string; leaked : string list }

let replay_provenance ~policy t =
  let module Provenance = Pift_core.Provenance in
  let prov = Provenance.create ~policy () in
  let verdicts = ref [] in
  let on_marker = function
    | Source { kind; range } ->
        Provenance.taint_source prov ~pid:t.pid ~label:kind range
    | Sink { kind; ranges } ->
        let leaked =
          List.sort_uniq String.compare
            (List.concat_map
               (fun r -> Provenance.labels_of prov ~pid:t.pid r)
               ranges)
        in
        verdicts := { pv_kind = kind; leaked } :: !verdicts
  in
  interleave t ~observe:(Provenance.observe prov) ~on_marker;
  List.rev !verdicts
