module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
module Program = Pift_dalvik.Program

let meth ~name ~registers ~ins ?handlers code =
  Method.make ~name ~registers ~ins ?handlers code

let prog ?classes ?(entry = "main") methods =
  Program.make ?classes ~entry methods

let call0 name = B.Invoke (B.Static, name, [])
let call name args = B.Invoke (B.Static, name, args)
let source_obj name dst = [ call0 name; B.Move_result_object dst ]
let source_int name dst = [ call0 name; B.Move_result dst ]
let imei dst = source_obj "TelephonyManager.getDeviceId" dst
let serial dst = source_obj "TelephonyManager.getSimSerialNumber" dst
let phone_number dst = source_obj "TelephonyManager.getLine1Number" dst
let latitude dst = source_int "LocationManager.getLatitude" dst
let longitude dst = source_int "LocationManager.getLongitude" dst
let lit dst s = B.Const_string (dst, s)

let concat ~dst a b =
  [ call "String.concat" [ a; b ]; B.Move_result_object dst ]

let int_to_string ~dst v =
  [ call "String.valueOf" [ v ]; B.Move_result_object dst ]

let send_sms ~dest ~msg = call "SmsManager.sendTextMessage" [ dest; msg ]
let http ~url ~body = call "HttpURLConnection.post" [ url; body ]
let log ~tag ~msg = call "Log.i" [ tag; msg ]
let sb_new ~dst = [ call0 "StringBuilder.new"; B.Move_result_object dst ]

let sb_append ~sb v =
  [ call "StringBuilder.append" [ sb; v ]; B.Move_result_object sb ]

let sb_to_string ~dst ~sb =
  [ call "StringBuilder.toString" [ sb ]; B.Move_result_object dst ]

type item =
  | I of B.t
  | Is of B.t list
  | L of string
  | Goto_l of string
  | If_l of B.test * B.v * B.v * string
  | Ifz_l of B.test * B.v * string
  | Switch_l of B.v * (int * string) list * string

let body items =
  (* First pass: assign indices; labels bind to the next bytecode. *)
  let labels = Hashtbl.create 8 in
  let count_of = function
    | I _ | Goto_l _ | If_l _ | Ifz_l _ | Switch_l _ -> 1
    | Is l -> List.length l
    | L _ -> 0
  in
  let _ =
    List.fold_left
      (fun idx item ->
        (match item with
        | L name ->
            if Hashtbl.mem labels name then
              failwith ("Dsl.body: duplicate label " ^ name)
            else Hashtbl.add labels name idx
        | I _ | Is _ | Goto_l _ | If_l _ | Ifz_l _ | Switch_l _ -> ());
        idx + count_of item)
      0 items
  in
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some i -> i
    | None -> failwith ("Dsl.body: unbound label " ^ name)
  in
  List.concat_map
    (function
      | I bc -> [ bc ]
      | Is l -> l
      | L _ -> []
      | Goto_l name -> [ B.Goto (resolve name) ]
      | If_l (t, a, b, name) -> [ B.If_test (t, a, b, resolve name) ]
      | Ifz_l (t, a, name) -> [ B.If_testz (t, a, resolve name) ]
      | Switch_l (v, table, default) ->
          [
            B.Packed_switch
              ( v,
                List.map (fun (k, name) -> (k, resolve name)) table,
                resolve default );
          ])
    items

(* Atomic: programs are built concurrently when recordings run on a
   [Pift_par] pool, and a torn counter could mint duplicate labels
   inside one program.  The numbers only have to be unique; labels
   resolve to indices and never reach traces. *)
let gap_counter = Atomic.make 0

let window_gap n =
  List.concat
    (List.init n (fun _ ->
         let l = Printf.sprintf "gap%d" (1 + Atomic.fetch_and_add gap_counter 1) in
         [ Goto_l l; L l ]))

let clean_loop ~counter ~bound ~iterations =
  let head = Printf.sprintf "clean%d_%d" counter iterations in
  let out = head ^ "_out" in
  [
    I (B.Const4 (counter, 0));
    I (B.Const16 (bound, iterations));
    L head;
    If_l (B.Ge, counter, bound, out);
    I (B.Binop_lit8 (B.Add, counter, counter, 1));
    Goto_l head;
    L out;
  ]
