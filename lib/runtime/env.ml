module Cpu = Pift_machine.Cpu
module Memory = Pift_machine.Memory
module Reg = Pift_arm.Reg

type t = { cpu : Cpu.t; heap : Heap.t; manager : Manager.t }

type native = t -> args:int array -> arg_addrs:int array -> unit

let create ?(pid = 1) ?metrics ~sink () =
  let mem = Memory.create () in
  let cpu = Cpu.create ~pid ?metrics ~sink mem in
  Cpu.set cpu Reg.R6 (Tcb.base ~pid);
  { cpu; heap = Heap.create mem; manager = Manager.create () }

let pid t = Cpu.pid t.cpu
let retval_addr t = Tcb.base ~pid:(pid t) + Tcb.retval_offset

let set_retval_ref t v =
  Intrinsics.store_word t.cpu ~addr:(retval_addr t) ~value:v

let retval t = Memory.read_u32 (Cpu.memory t.cpu) (retval_addr t)
