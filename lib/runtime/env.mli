(** Execution environment shared by the runtime, the VM, and native
    methods: the CPU, the heap, and the PIFT manager. *)

type t = {
  cpu : Pift_machine.Cpu.t;
  heap : Heap.t;
  manager : Manager.t;
}

type native = t -> args:int array -> arg_addrs:int array -> unit
(** A native method: receives argument values and the addresses of the
    frame slots holding them (so it can *load* tainted values rather than
    conjure them).  Results are written to the caller-visible return-value
    slot ({!Tcb.retval_offset}) by executed stores. *)

val create :
  ?pid:int -> ?metrics:Pift_obs.Registry.t ->
  sink:(Pift_trace.Event.t -> unit) -> unit -> t
(** Fresh memory, CPU (with [r6] pointing at the process TCB), heap and
    manager.  [metrics] is handed to {!Pift_machine.Cpu.create}. *)

val pid : t -> int

val retval_addr : t -> int
(** Address of the current process's return-value slot. *)

val set_retval_ref : t -> int -> unit
(** Write an object reference (clean data) to the return-value slot via
    an executed [mov]/[str] pair. *)

val retval : t -> int
(** Read the return-value slot directly (inspection only). *)
