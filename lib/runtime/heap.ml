module Memory = Pift_machine.Memory
module Layout = Pift_machine.Layout

type t = { mem : Memory.t; mutable brk : int }

let create mem = { mem; brk = Layout.heap_base }
let memory t = t.mem

let alloc t bytes =
  if bytes < 0 then invalid_arg "Heap.alloc: negative size";
  let addr = t.brk in
  let aligned = (bytes + 7) / 8 * 8 in
  if addr + aligned > Layout.heap_limit then failwith "Heap.alloc: exhausted";
  t.brk <- addr + aligned;
  addr

(* The class-id intern table is process-global (ids must agree across
   every Env in the process) and is hit from worker domains when
   recordings run on a [Pift_par] pool, so all access goes through one
   mutex.  Numeric ids depend on first-use order and may differ between
   schedules; that is fine — they are only ever written as object-header
   *values* and mapped back through [class_name_of_id], never used as
   addresses, so traces and verdicts do not depend on them. *)
let class_mu = Mutex.create ()
let class_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let next_class_id = ref 1

let class_names : (int, string) Hashtbl.t = Hashtbl.create 32

let class_id name =
  Mutex.lock class_mu;
  let id =
    match Hashtbl.find_opt class_ids name with
    | Some id -> id
    | None ->
        let id = !next_class_id in
        incr next_class_id;
        Hashtbl.add class_ids name id;
        Hashtbl.add class_names id name;
        id
  in
  Mutex.unlock class_mu;
  id

let class_name_of_id id =
  Mutex.lock class_mu;
  let name = Hashtbl.find_opt class_names id in
  Mutex.unlock class_mu;
  name

let new_object t ~class_name ~field_count =
  let obj = alloc t (4 + (4 * field_count)) in
  Memory.write_u32 t.mem obj (class_id class_name);
  obj

let field_addr ~obj ~index = obj + 4 + (4 * index)
let read_class t obj = Memory.read_u32 t.mem obj
let allocated_bytes t = t.brk - Layout.heap_base
