(** Full register-level dynamic information-flow tracking — the
    conventional design PIFT avoids (Suh et al. / Raksha / TaintDroid
    style, §6), used here as ground truth and comparison point.

    Every instruction propagates taint from source operands to destination
    operands: loads copy memory taint into registers, ALU operations OR
    their source-register taints into the destination, and stores write
    the register taint back to byte-granular shadow memory (clean stores
    untaint).  Only direct flows are tracked, matching the paper's threat
    model (no control-flow/implicit propagation). *)

type t

val create : ?backend:Pift_core.Store_backend.backend -> unit -> t
(** [backend] (default [Functional]) selects the shadow-memory
    representation; all backends are semantically identical, so the
    ground-truth verdicts never depend on the choice. *)

val taint_source : t -> pid:int -> Pift_util.Range.t -> unit
val observe : t -> Pift_trace.Event.t -> unit
val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool
val reg_tainted : t -> pid:int -> Pift_arm.Reg.t -> bool
val tainted_bytes : t -> int
val tainted_ranges : t -> pid:int -> Pift_util.Range.t list

val propagations : t -> int
(** Number of per-instruction propagation operations performed — the cost
    PIFT's load/store-only design eliminates. *)
