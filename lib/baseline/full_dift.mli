(** Full register-level dynamic information-flow tracking — the
    conventional design PIFT avoids (Suh et al. / Raksha / TaintDroid
    style, §6), used here as ground truth and comparison point.

    Every instruction propagates taint from source operands to destination
    operands: loads copy memory taint into registers, ALU operations OR
    their source-register taints into the destination, and stores write
    the register taint back to byte-granular shadow memory (clean stores
    untaint).  Only direct flows are tracked, matching the paper's threat
    model (no control-flow/implicit propagation). *)

type t

val create :
  ?backend:Pift_core.Store_backend.backend -> ?track_origins:bool -> unit -> t
(** [backend] (default [Functional]) selects the shadow-memory
    representation; all backends are semantically identical, so the
    ground-truth verdicts never depend on the choice.

    With [track_origins] (default off), every boolean shadow operation
    is mirrored over per-source-kind origin sets — registers carry label
    sets, shadow memory one taint set per label, stores performing exact
    strong updates (a store clears every origin its register does not
    carry).  These are the {e exact} origin sets PIFT's predicted sets
    are measured against ({!Pift_eval.Accuracy}); verdicts,
    {!propagations} and the boolean path are unchanged either way. *)

val taint_source : ?kind:string -> t -> pid:int -> Pift_util.Range.t -> unit
(** [kind] (default ["source"]) is the origin label recorded when
    origin tracking is on; ignored otherwise. *)

val observe : t -> Pift_trace.Event.t -> unit
val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool
val reg_tainted : t -> pid:int -> Pift_arm.Reg.t -> bool
val tainted_bytes : t -> int
val tainted_ranges : t -> pid:int -> Pift_util.Range.t list

val origins_of : t -> pid:int -> Pift_util.Range.t -> string list
(** Source kinds whose data overlaps the range (sorted, exact); [[]]
    when origin tracking is off. *)

val reg_origins : t -> pid:int -> Pift_arm.Reg.t -> string list
(** Origin set currently carried by a register (sorted). *)

val propagations : t -> int
(** Number of per-instruction propagation operations performed — the cost
    PIFT's load/store-only design eliminates. *)
