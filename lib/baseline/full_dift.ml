module Range = Pift_util.Range
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Event = Pift_trace.Event
module Store_backend = Pift_core.Store_backend

type proc = { regs : bool array; mem : Store_backend.set }

type t = {
  procs : (int, proc) Hashtbl.t;
  backend : Store_backend.backend;
  mutable propagations : int;
}

let create ?(backend = Store_backend.Functional) () =
  { procs = Hashtbl.create 4; backend; propagations = 0 }

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      let p =
        { regs = Array.make 16 false; mem = Store_backend.make t.backend }
      in
      Hashtbl.add t.procs pid p;
      p

let taint_source t ~pid r =
  let p = proc t pid in
  p.mem.Store_backend.s_add r

let is_tainted t ~pid r = (proc t pid).mem.Store_backend.s_overlaps r
let reg_tainted t ~pid reg = (proc t pid).regs.(Reg.index reg)

let tainted_bytes t =
  Hashtbl.fold (fun _ p acc -> acc + p.mem.Store_backend.s_bytes ()) t.procs 0

let tainted_ranges t ~pid = (proc t pid).mem.Store_backend.s_ranges ()
let propagations t = t.propagations

let set_reg t p i v =
  t.propagations <- t.propagations + 1;
  p.regs.(i) <- v

let set_mem t p range v =
  t.propagations <- t.propagations + 1;
  if v then p.mem.Store_backend.s_add range
  else p.mem.Store_backend.s_remove range

let operand_taint p = function
  | Insn.Imm _ -> false
  | Insn.Reg r | Insn.Shifted (r, _) -> p.regs.(Reg.index r)

(* Word-sized sub-ranges of a multi-register transfer. *)
let word_slot range i = Range.of_len (Range.lo range + (4 * i)) 4

let observe t e =
  let p = proc t e.Event.pid in
  match (e.Event.insn, e.Event.access) with
  | Insn.Ldr (w, r, _), Event.Load range -> (
      match w with
      | Insn.Dword ->
          let lo_half = Range.of_len (Range.lo range) 4 in
          let hi_half = Range.of_len (Range.lo range + 4) 4 in
          set_reg t p (Reg.index r) (p.mem.Store_backend.s_overlaps lo_half);
          set_reg t p
            (Reg.index (Reg.succ r))
            (p.mem.Store_backend.s_overlaps hi_half)
      | Insn.Byte | Insn.Half | Insn.Word ->
          set_reg t p (Reg.index r) (p.mem.Store_backend.s_overlaps range))
  | Insn.Str (w, r, _), Event.Store range -> (
      match w with
      | Insn.Dword ->
          set_mem t p
            (Range.of_len (Range.lo range) 4)
            p.regs.(Reg.index r);
          set_mem t p
            (Range.of_len (Range.lo range + 4) 4)
            p.regs.(Reg.index (Reg.succ r))
      | Insn.Byte | Insn.Half | Insn.Word ->
          set_mem t p range p.regs.(Reg.index r))
  | Insn.Ldm (_, regs), Event.Load range ->
      List.iteri
        (fun i r ->
          set_reg t p (Reg.index r)
            (p.mem.Store_backend.s_overlaps (word_slot range i)))
        regs
  | Insn.Stm (_, regs), Event.Store range ->
      List.iteri
        (fun i r -> set_mem t p (word_slot range i) p.regs.(Reg.index r))
        regs
  | Insn.Mov (r, op), _ | Insn.Mvn (r, op), _ ->
      set_reg t p (Reg.index r) (operand_taint p op)
  | Insn.Alu (_, _, d, s, o), _ ->
      set_reg t p (Reg.index d) (p.regs.(Reg.index s) || operand_taint p o)
  | Insn.Ubfx (d, s, _, _), _ ->
      set_reg t p (Reg.index d) p.regs.(Reg.index s)
  | Insn.Udiv (d, n, m), _ ->
      set_reg t p (Reg.index d)
        (p.regs.(Reg.index n) || p.regs.(Reg.index m))
  | Insn.Bl _, _ ->
      (* LR receives a code address: always clean. *)
      set_reg t p (Reg.index Reg.LR) false
  | Insn.Cmp _, _ | Insn.B _, _ | Insn.Bx _, _ | Insn.Nop, _ -> ()
  | (Insn.Ldr _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _), _ ->
      (* A memory instruction must carry its access. *)
      assert false
