module Range = Pift_util.Range
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Event = Pift_trace.Event
module Store_backend = Pift_core.Store_backend
module Sset = Set.Make (String)

(* [oregs]/[omem] shadow the boolean state with per-origin sets when
   [track_origins] is on; they are allocated either way (16 empty sets
   and an empty table per process) but never touched when off, so the
   ground-truth hot path is unchanged. *)
type proc = {
  regs : bool array;
  mem : Store_backend.set;
  oregs : Sset.t array;
  omem : (string, Store_backend.set) Hashtbl.t;
}

type t = {
  procs : (int, proc) Hashtbl.t;
  backend : Store_backend.backend;
  track_origins : bool;
  mutable labels : Sset.t;
  mutable propagations : int;
}

let create ?(backend = Store_backend.Functional) ?(track_origins = false) () =
  {
    procs = Hashtbl.create 4;
    backend;
    track_origins;
    labels = Sset.empty;
    propagations = 0;
  }

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      let p =
        {
          regs = Array.make 16 false;
          mem = Store_backend.make t.backend;
          oregs = Array.make 16 Sset.empty;
          omem = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.procs pid p;
      p

let olabel t p label =
  match Hashtbl.find_opt p.omem label with
  | Some s -> s
  | None ->
      let s = Store_backend.make t.backend in
      Hashtbl.add p.omem label s;
      s

let taint_source ?(kind = "source") t ~pid r =
  let p = proc t pid in
  p.mem.Store_backend.s_add r;
  if t.track_origins then begin
    t.labels <- Sset.add kind t.labels;
    (olabel t p kind).Store_backend.s_add r
  end

let is_tainted t ~pid r = (proc t pid).mem.Store_backend.s_overlaps r
let reg_tainted t ~pid reg = (proc t pid).regs.(Reg.index reg)

let tainted_bytes t =
  Hashtbl.fold (fun _ p acc -> acc + p.mem.Store_backend.s_bytes ()) t.procs 0

let tainted_ranges t ~pid = (proc t pid).mem.Store_backend.s_ranges ()
let propagations t = t.propagations

(* Origin sets are exact: which source kinds' data overlaps the range.
   Folding over the sorted global label set keeps the answer (and any
   emission built on it) independent of Hashtbl order. *)
let origins_of t ~pid r =
  let p = proc t pid in
  Sset.elements
    (Sset.filter
       (fun label ->
         match Hashtbl.find_opt p.omem label with
         | Some s -> s.Store_backend.s_overlaps r
         | None -> false)
       t.labels)

let reg_origins t ~pid reg = Sset.elements (proc t pid).oregs.(Reg.index reg)

(* [propagations] counts boolean shadow operations only, so the metric
   is identical with origin tracking on or off. *)
let set_reg t p i v =
  t.propagations <- t.propagations + 1;
  p.regs.(i) <- v

let set_mem t p range v =
  t.propagations <- t.propagations + 1;
  if v then p.mem.Store_backend.s_add range
  else p.mem.Store_backend.s_remove range

let operand_taint p = function
  | Insn.Imm _ -> false
  | Insn.Reg r | Insn.Shifted (r, _) -> p.regs.(Reg.index r)

(* Word-sized sub-ranges of a multi-register transfer. *)
let word_slot range i = Range.of_len (Range.lo range + (4 * i)) 4

(* --- per-origin mirror of the boolean propagation rules ----------------- *)

let omem_hit t p r =
  Sset.filter
    (fun label ->
      match Hashtbl.find_opt p.omem label with
      | Some s -> s.Store_backend.s_overlaps r
      | None -> false)
    t.labels

(* Exact strong update, the per-label analogue of [set_mem]: a store
   writes its register's origin set and *clears* every other origin from
   the written range (a clean store untaints all of them). *)
let oset_mem t p range oset =
  Sset.iter
    (fun label ->
      let s = olabel t p label in
      if Sset.mem label oset then s.Store_backend.s_add range
      else s.Store_backend.s_remove range)
    t.labels

let operand_origins p = function
  | Insn.Imm _ -> Sset.empty
  | Insn.Reg r | Insn.Shifted (r, _) -> p.oregs.(Reg.index r)

let observe_origins t p e =
  let set_oreg i s = p.oregs.(i) <- s in
  match (e.Event.insn, e.Event.access) with
  | Insn.Ldr (w, r, _), Event.Load range -> (
      match w with
      | Insn.Dword ->
          let lo_half = Range.of_len (Range.lo range) 4 in
          let hi_half = Range.of_len (Range.lo range + 4) 4 in
          set_oreg (Reg.index r) (omem_hit t p lo_half);
          set_oreg (Reg.index (Reg.succ r)) (omem_hit t p hi_half)
      | Insn.Byte | Insn.Half | Insn.Word ->
          set_oreg (Reg.index r) (omem_hit t p range))
  | Insn.Str (w, r, _), Event.Store range -> (
      match w with
      | Insn.Dword ->
          oset_mem t p
            (Range.of_len (Range.lo range) 4)
            p.oregs.(Reg.index r);
          oset_mem t p
            (Range.of_len (Range.lo range + 4) 4)
            p.oregs.(Reg.index (Reg.succ r))
      | Insn.Byte | Insn.Half | Insn.Word ->
          oset_mem t p range p.oregs.(Reg.index r))
  | Insn.Ldm (_, regs), Event.Load range ->
      List.iteri
        (fun i r -> set_oreg (Reg.index r) (omem_hit t p (word_slot range i)))
        regs
  | Insn.Stm (_, regs), Event.Store range ->
      List.iteri
        (fun i r -> oset_mem t p (word_slot range i) p.oregs.(Reg.index r))
        regs
  | Insn.Mov (r, op), _ | Insn.Mvn (r, op), _ ->
      set_oreg (Reg.index r) (operand_origins p op)
  | Insn.Alu (_, _, d, s, o), _ ->
      set_oreg (Reg.index d)
        (Sset.union p.oregs.(Reg.index s) (operand_origins p o))
  | Insn.Ubfx (d, s, _, _), _ -> set_oreg (Reg.index d) p.oregs.(Reg.index s)
  | Insn.Udiv (d, n, m), _ ->
      set_oreg (Reg.index d)
        (Sset.union p.oregs.(Reg.index n) p.oregs.(Reg.index m))
  | Insn.Bl _, _ -> set_oreg (Reg.index Reg.LR) Sset.empty
  | Insn.Cmp _, _ | Insn.B _, _ | Insn.Bx _, _ | Insn.Nop, _ -> ()
  | (Insn.Ldr _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _), _ -> assert false

let observe t e =
  let p = proc t e.Event.pid in
  (* The origin mirror reads only origin state and the bool pass reads
     only bool state, so running it first changes nothing — but keeping
     it first means both passes see the same pre-instruction world. *)
  if t.track_origins then observe_origins t p e;
  match (e.Event.insn, e.Event.access) with
  | Insn.Ldr (w, r, _), Event.Load range -> (
      match w with
      | Insn.Dword ->
          let lo_half = Range.of_len (Range.lo range) 4 in
          let hi_half = Range.of_len (Range.lo range + 4) 4 in
          set_reg t p (Reg.index r) (p.mem.Store_backend.s_overlaps lo_half);
          set_reg t p
            (Reg.index (Reg.succ r))
            (p.mem.Store_backend.s_overlaps hi_half)
      | Insn.Byte | Insn.Half | Insn.Word ->
          set_reg t p (Reg.index r) (p.mem.Store_backend.s_overlaps range))
  | Insn.Str (w, r, _), Event.Store range -> (
      match w with
      | Insn.Dword ->
          set_mem t p
            (Range.of_len (Range.lo range) 4)
            p.regs.(Reg.index r);
          set_mem t p
            (Range.of_len (Range.lo range + 4) 4)
            p.regs.(Reg.index (Reg.succ r))
      | Insn.Byte | Insn.Half | Insn.Word ->
          set_mem t p range p.regs.(Reg.index r))
  | Insn.Ldm (_, regs), Event.Load range ->
      List.iteri
        (fun i r ->
          set_reg t p (Reg.index r)
            (p.mem.Store_backend.s_overlaps (word_slot range i)))
        regs
  | Insn.Stm (_, regs), Event.Store range ->
      List.iteri
        (fun i r -> set_mem t p (word_slot range i) p.regs.(Reg.index r))
        regs
  | Insn.Mov (r, op), _ | Insn.Mvn (r, op), _ ->
      set_reg t p (Reg.index r) (operand_taint p op)
  | Insn.Alu (_, _, d, s, o), _ ->
      set_reg t p (Reg.index d) (p.regs.(Reg.index s) || operand_taint p o)
  | Insn.Ubfx (d, s, _, _), _ ->
      set_reg t p (Reg.index d) p.regs.(Reg.index s)
  | Insn.Udiv (d, n, m), _ ->
      set_reg t p (Reg.index d)
        (p.regs.(Reg.index n) || p.regs.(Reg.index m))
  | Insn.Bl _, _ ->
      (* LR receives a code address: always clean. *)
      set_reg t p (Reg.index Reg.LR) false
  | Insn.Cmp _, _ | Insn.B _, _ | Insn.Bx _, _ | Insn.Nop, _ -> ()
  | (Insn.Ldr _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _), _ ->
      (* A memory instruction must carry its access. *)
      assert false
