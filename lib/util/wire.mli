(** Binary wire coding shared by the trace format ([Pift_eval.Trace_io],
    magic [PIFTBIN1]) and the service snapshot format
    ([Pift_service.Snapshot], magic [PIFTSNAP1]): LEB128 varints,
    zigzag signed coding, and a chunked channel reader.

    Every decode primitive takes a [fail] continuation so each format
    reports errors at its own record granularity ([Trace_io: record N],
    [Snapshot: record N]); [fail] must raise. *)

val add_varint : Buffer.t -> int -> unit
(** Append a non-negative int as an LEB128 varint (7 bits per byte,
    high bit = continuation). *)

val zigzag : int -> int
(** Map a signed int to a non-negative code: 0, -1, 1, -2 → 0, 1, 2, 3. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)

val add_svarint : Buffer.t -> int -> unit
(** [add_varint buf (zigzag v)] — signed values, small magnitudes stay
    one byte. *)

val add_string : Buffer.t -> string -> unit
(** Length-prefixed raw bytes: varint length, then the bytes. *)

module Reader : sig
  (** Chunked channel reader. Fields are exposed so length-prefixed
      formats can decode a whole buffered record in place ([buf] between
      [lo] and [hi]) after a {!has} check, without re-copying. *)
  type t = {
    ic : in_channel;
    mutable buf : Bytes.t;
    mutable lo : int;  (** next unread byte *)
    mutable hi : int;  (** end of valid bytes *)
    mutable eof : bool;
  }

  val create : in_channel -> t
  (** Reader over [ic] with a 64 KiB chunk buffer. The caller retains
      ownership of the channel (close it yourself). *)

  val refill : t -> unit
  (** Slide live bytes to the front and read one more chunk; sets [eof]
      when the channel is exhausted. *)

  val has : t -> int -> bool
  (** [has r n] buffers until [n] contiguous bytes are available
      (growing [buf] beyond the chunk size if needed); [false] means
      the stream ended first. *)

  val byte : t -> int
  (** Next byte, or [-1] at end of stream. *)

  val varint : ?first_eof_ok:bool -> (string -> int) -> t -> int
  (** Decode one varint. Calls [fail] (which must raise) on truncation
      or a varint longer than 9 bytes. With [~first_eof_ok:true],
      raises [End_of_file] when the stream ends cleanly before the
      first byte — the record-boundary EOF case. *)
end
