(* Low-level binary coding shared by the trace serialisation
   (Pift_eval.Trace_io, magic PIFTBIN1) and the service snapshot format
   (Pift_service.Snapshot, magic PIFTSNAP1): LEB128 varints, zigzag
   signed coding, and a chunked channel reader that decodes straight
   out of a refill buffer.  Both formats are length-prefixed record
   streams, so they share the same failure discipline: every decode
   primitive takes a [fail] continuation that raises with the caller's
   record position. *)

let add_varint buf v =
  let v = ref v in
  while !v lsr 7 <> 0 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (-(z land 1))
let add_svarint buf v = add_varint buf (zigzag v)

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

module Reader = struct
  (* Chunked channel reader: records average tens of bytes, so decoding
     straight from a large refill buffer (grown in place for oversized
     records) beats per-field channel calls by a wide margin. *)
  type t = {
    ic : in_channel;
    mutable buf : Bytes.t;
    mutable lo : int;  (* next unread byte *)
    mutable hi : int;  (* end of valid bytes *)
    mutable eof : bool;
  }

  let create ic =
    { ic; buf = Bytes.create 65536; lo = 0; hi = 0; eof = false }

  let refill r =
    if not r.eof then begin
      let live = r.hi - r.lo in
      if live > 0 && r.lo > 0 then Bytes.blit r.buf r.lo r.buf 0 live;
      r.lo <- 0;
      r.hi <- live;
      let n = input r.ic r.buf r.hi (Bytes.length r.buf - r.hi) in
      if n = 0 then r.eof <- true else r.hi <- r.hi + n
    end

  (* Whether [n] contiguous bytes can be buffered (growing the buffer
     when a record is larger than a chunk). *)
  let has r n =
    if Bytes.length r.buf < n then begin
      let grown = Bytes.create (max n (2 * Bytes.length r.buf)) in
      Bytes.blit r.buf r.lo grown 0 (r.hi - r.lo);
      r.buf <- grown;
      r.hi <- r.hi - r.lo;
      r.lo <- 0
    end;
    while r.hi - r.lo < n && not r.eof do
      refill r
    done;
    r.hi - r.lo >= n

  let byte r =
    if r.lo >= r.hi then refill r;
    if r.lo >= r.hi then -1
    else begin
      let b = Char.code (Bytes.unsafe_get r.buf r.lo) in
      r.lo <- r.lo + 1;
      b
    end

  (* Header fields and record length prefixes.  [first_eof_ok]
     distinguishes the clean end of the stream (EOF where a record
     would start) from truncation inside a varint.  Varints are capped
     at 9 bytes (63 value bits) so corrupt input cannot loop. *)
  let varint ?(first_eof_ok = false) fail r =
    let rec go shift acc first =
      match byte r with
      | -1 ->
          if first && first_eof_ok then raise End_of_file
          else fail "truncated varint"
      | b ->
          if shift > 56 && b > 0x7f then fail "varint overflow"
          else begin
            let acc = acc lor ((b land 0x7f) lsl shift) in
            if b < 0x80 then acc else go (shift + 7) acc false
          end
    in
    go 0 0 true
end
