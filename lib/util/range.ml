type t = { lo : int; hi : int }

let make lo hi =
  if lo < 0 then invalid_arg "Range.make: negative address";
  if hi < lo then invalid_arg "Range.make: hi < lo";
  { lo; hi }

let of_len addr len =
  if len <= 0 then invalid_arg "Range.of_len: non-positive length";
  make addr (addr + len - 1)

let byte a = make a a
let length r = r.hi - r.lo + 1
let lo r = r.lo
let hi r = r.hi
(* Ranges are CLOSED intervals: [hi] is the last tainted byte, not one
   past it.  Everything downstream builds on this — [length] is
   [hi - lo + 1], two ranges are adjacent (coalescable into one
   canonical range, never overlapping) exactly when [a.hi + 1 = b.lo],
   and a store backend's canonical form is maximal disjoint
   non-adjacent closed ranges.  A half-open reading of [hi] silently
   shifts every one of those by one byte, so changes here must keep the
   [test_store.ml] hi+1-adjacency regression green. *)
let overlaps a b = max a.lo b.lo <= min a.hi b.hi
let adjacent a b = a.hi + 1 = b.lo || b.hi + 1 = a.lo
let contains r a = r.lo <= a && a <= r.hi
let covers a b = a.lo <= b.lo && b.hi <= a.hi

let union a b =
  if not (overlaps a b || adjacent a b) then
    invalid_arg "Range.union: disjoint ranges";
  { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inter a b =
  if overlaps a b then Some { lo = max a.lo b.lo; hi = min a.hi b.hi }
  else None

let subtract a b =
  if not (overlaps a b) then [ a ]
  else begin
    let left = if b.lo > a.lo then [ { lo = a.lo; hi = b.lo - 1 } ] else [] in
    let right = if b.hi < a.hi then [ { lo = b.hi + 1; hi = a.hi } ] else [] in
    left @ right
  end

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let pp ppf r = Format.fprintf ppf "[0x%x,0x%x]" r.lo r.hi
let to_string r = Format.asprintf "%a" pp r
