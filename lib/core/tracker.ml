module Range = Pift_util.Range
module Series = Pift_util.Series
module Event = Pift_trace.Event
module Counter = Pift_obs.Metric.Counter
module Gauge = Pift_obs.Metric.Gauge

type window = { mutable ltlt : int; mutable nt_used : int }

(* Cells resolved once at [create]; the hot path is a field load and an
   integer store per event when metrics are on, nothing when off. *)
type meters = {
  m_events : Counter.t;
  m_lookups : Counter.t;
  m_tainted_loads : Counter.t;
  m_taint_ops : Counter.t;
  m_untaint_ops : Counter.t;
  m_tainted_bytes : Gauge.t;
  m_ranges : Gauge.t;
  m_window_opens : int -> Counter.t;
}

let meters_of registry =
  let c help name = Pift_obs.Registry.counter registry ~help name in
  let g help name = Pift_obs.Registry.gauge registry ~help name in
  let opens =
    Pift_obs.Registry.counter_family registry
      ~help:"tainting windows opened or restarted, per process" ~label:"pid"
      "pift_tracker_window_opens_total"
  in
  {
    m_events = c "instruction events observed" "pift_tracker_events_total";
    m_lookups = c "load-time taint queries" "pift_tracker_lookups_total";
    m_tainted_loads =
      c "queries that hit and opened a window"
        "pift_tracker_tainted_loads_total";
    m_taint_ops =
      c "store ranges tainted by propagation (Fig. 16)"
        "pift_tracker_taint_ops_total";
    m_untaint_ops =
      c "store ranges untainted (Fig. 16)" "pift_tracker_untaint_ops_total";
    m_tainted_bytes =
      g "currently tainted bytes across processes (Fig. 15)"
        "pift_tracker_tainted_bytes";
    m_ranges = g "distinct tainted ranges" "pift_tracker_ranges";
    m_window_opens = (fun pid -> opens (string_of_int pid));
  }

type stats = {
  taint_ops : int;
  untaint_ops : int;
  lookups : int;
  tainted_loads : int;
  max_tainted_bytes : int;
  max_ranges : int;
  events : int;
}

type t = {
  policy : Policy.t;
  store : Store.t;
  windows : (int, window) Hashtbl.t;
  mutable taint_ops : int;
  mutable untaint_ops : int;
  mutable lookups : int;
  mutable tainted_loads : int;
  mutable max_tainted_bytes : int;
  mutable max_ranges : int;
  mutable events : int;
  mutable last_time : int;
  bytes_series : Series.t;
  ops_series : Series.t;
  meters : meters option;
  flight : Pift_obs.Flight.t option;
  prov : Provenance.t option;
  telemetry : Pift_obs.Telemetry.t option;
  profile : Pift_obs.Profile.t option;
  mutable last_window_used : int;  (* telemetry's window_used source *)
}

(* LTLT <- -inf (Algorithm 1 line 8); any value with ltlt + ni < 1 works. *)
let minus_infinity = min_int / 2

let create ?(policy = Policy.default) ?(store = Store.create ()) ?metrics
    ?flight ?prov ?telemetry ?profile () =
  let t =
    {
      flight;
      prov;
      telemetry;
      profile;
      policy;
      store;
      windows = Hashtbl.create 4;
      taint_ops = 0;
      untaint_ops = 0;
      lookups = 0;
      tainted_loads = 0;
      max_tainted_bytes = 0;
      max_ranges = 0;
      events = 0;
      last_time = 0;
      last_window_used = 0;
      bytes_series = Series.create ~name:"tainted bytes" ();
      ops_series = Series.create ~name:"taint+untaint ops" ();
      meters = Option.map meters_of metrics;
    }
  in
  (* Telemetry sources are closures over this tracker's live state; they
     replace any previous tracker's bindings on the shared per-slot
     instance (a sweep builds one tracker per grid cell). *)
  (match telemetry with
  | None -> ()
  | Some te ->
      let module Telemetry = Pift_obs.Telemetry in
      Telemetry.set_source te ~name:"tainted_bytes" (fun () ->
          float_of_int (t.store.Store.tainted_bytes ()));
      Telemetry.set_source te ~name:"ranges" (fun () ->
          float_of_int (t.store.Store.range_count ()));
      Telemetry.set_source te ~name:"window_used" (fun () ->
          float_of_int t.last_window_used));
  t

let policy t = t.policy

let window t pid =
  match Hashtbl.find_opt t.windows pid with
  | Some w -> w
  | None ->
      let w = { ltlt = minus_infinity; nt_used = 0 } in
      Hashtbl.add t.windows pid w;
      w

(* Store operations bracketed as "store" profiler regions, so folded
   stacks separate interval-set cost from the tracker's own window
   logic; the [None] branch costs one match, the usual gating. *)
let st_overlaps t ~pid r =
  match t.profile with
  | None -> t.store.Store.overlaps ~pid r
  | Some p ->
      Pift_obs.Profile.enter p "store";
      let v = t.store.Store.overlaps ~pid r in
      Pift_obs.Profile.leave p;
      v

let st_add t ~pid r =
  match t.profile with
  | None -> t.store.Store.add ~pid r
  | Some p ->
      Pift_obs.Profile.enter p "store";
      t.store.Store.add ~pid r;
      Pift_obs.Profile.leave p

let st_remove t ~pid r =
  match t.profile with
  | None -> t.store.Store.remove ~pid r
  | Some p ->
      Pift_obs.Profile.enter p "store";
      t.store.Store.remove ~pid r;
      Pift_obs.Profile.leave p

let update_peaks t ~time =
  let bytes = t.store.Store.tainted_bytes () in
  let count = t.store.Store.range_count () in
  if bytes > t.max_tainted_bytes then t.max_tainted_bytes <- bytes;
  if count > t.max_ranges then t.max_ranges <- count;
  (match t.meters with
  | None -> ()
  | Some m ->
      Gauge.set m.m_tainted_bytes bytes;
      Gauge.set m.m_ranges count);
  (match t.flight with
  | None -> ()
  | Some f ->
      Pift_obs.Flight.sample f "tainted_bytes" (float_of_int bytes);
      Pift_obs.Flight.sample f "ranges" (float_of_int count));
  Series.record_if_changed t.bytes_series ~time ~value:bytes

let record_op t ~time =
  Series.record t.ops_series ~time ~value:(t.taint_ops + t.untaint_ops)

let taint_source ?(kind = "source") t ~pid r =
  (match t.flight with
  | None -> ()
  | Some f -> Pift_obs.Flight.instant f "source");
  (match t.prov with
  | None -> ()
  | Some p -> Provenance.taint_source p ~pid ~label:kind r);
  st_add t ~pid r;
  update_peaks t ~time:t.last_time

(* Like [taint_source], a Manager-driven untaint must land in the
   observability state: without the [update_peaks] call the tainted-bytes
   gauges went stale and Fig. 15's bytes-over-time curve missed the dip
   when a source range is untainted. *)
let untaint_range t ~pid r =
  (match t.prov with
  | None -> ()
  | Some p -> Provenance.untaint_range p ~pid r);
  st_remove t ~pid r;
  update_peaks t ~time:t.last_time

(* Tenant eviction for a long-lived tracker: the pid's window, taint
   state and provenance sidecar state are all dropped, and the
   observability state sees the dip (same reasoning as [untaint_range] —
   gauges and the Fig. 15 series must not go stale). *)
let release_pid t ~pid =
  Hashtbl.remove t.windows pid;
  (match t.prov with
  | None -> ()
  | Some p -> Provenance.release_pid p ~pid);
  t.store.Store.release_pid ~pid;
  update_peaks t ~time:t.last_time

let current_tainted_bytes t = t.store.Store.tainted_bytes ()
let current_ranges t = t.store.Store.range_count ()

let origins_of t ~pid r =
  match t.prov with
  | None -> []
  | Some p -> Provenance.labels_of p ~pid r

let provenance t = t.prov
let is_tainted t ~pid r =
  (match t.flight with
  | None -> ()
  | Some f -> Pift_obs.Flight.instant f "sink-check");
  st_overlaps t ~pid r
let tainted_ranges t ~pid = t.store.Store.ranges ~pid

let observe_event t e =
  t.events <- t.events + 1;
  (match t.meters with
  | None -> ()
  | Some m -> Counter.incr m.m_events);
  (* The provenance sidecar replays the same Algorithm 1 over per-label
     state; its union equals [t.store] at every step (see Provenance),
     so it never changes verdicts — only answers [origins_of]. *)
  (match t.prov with
  | None -> ()
  | Some p -> Provenance.observe p e);
  if e.Event.seq > t.last_time then t.last_time <- e.Event.seq;
  match e.Event.access with
  | Event.Other -> ()
  | Event.Load r ->
      (* Lines 10–15: a load overlapping R starts (over) the window. *)
      t.lookups <- t.lookups + 1;
      (match t.meters with
      | None -> ()
      | Some m -> Counter.incr m.m_lookups);
      if st_overlaps t ~pid:e.pid r then begin
        t.tainted_loads <- t.tainted_loads + 1;
        (match t.meters with
        | None -> ()
        | Some m ->
            Counter.incr m.m_tainted_loads;
            Counter.incr (m.m_window_opens e.pid));
        let w = window t e.pid in
        w.ltlt <- e.k;
        w.nt_used <- 0
      end
  | Event.Store r ->
      (* Lines 16–23: taint inside the window, up to NT times; otherwise
         untaint (if enabled). *)
      let w = window t e.pid in
      if e.k <= w.ltlt + t.policy.Policy.ni && w.nt_used < t.policy.Policy.nt
      then begin
        st_add t ~pid:e.pid r;
        w.nt_used <- w.nt_used + 1;
        t.last_window_used <- w.nt_used;
        (match t.flight with
        | None -> ()
        | Some f ->
            Pift_obs.Flight.sample f "window_used" (float_of_int w.nt_used));
        t.taint_ops <- t.taint_ops + 1;
        (match t.meters with
        | None -> ()
        | Some m -> Counter.incr m.m_taint_ops);
        record_op t ~time:e.seq;
        update_peaks t ~time:e.seq
      end
      else if t.policy.Policy.untaint && st_overlaps t ~pid:e.pid r
      then begin
        st_remove t ~pid:e.pid r;
        t.untaint_ops <- t.untaint_ops + 1;
        (match t.meters with
        | None -> ()
        | Some m -> Counter.incr m.m_untaint_ops);
        record_op t ~time:e.seq;
        update_peaks t ~time:e.seq
      end

(* The event entry point: one telemetry bump per event (an increment
   and a compare when cadence is quiet), and the whole dispatch
   attributed to the "tracker" region when profiling — store calls
   nest "store" regions beneath it, so tracker self time is the window
   logic proper. *)
let observe t e =
  (match t.telemetry with
  | None -> ()
  | Some te -> Pift_obs.Telemetry.bump te);
  match t.profile with
  | None -> observe_event t e
  | Some p ->
      Pift_obs.Profile.enter p "tracker";
      observe_event t e;
      Pift_obs.Profile.leave p

let stats t =
  {
    taint_ops = t.taint_ops;
    untaint_ops = t.untaint_ops;
    lookups = t.lookups;
    tainted_loads = t.tainted_loads;
    max_tainted_bytes = t.max_tainted_bytes;
    max_ranges = t.max_ranges;
    events = t.events;
  }

let tainted_bytes_series t = t.bytes_series
let ops_series t = t.ops_series

(* --- persistence --------------------------------------------------------- *)

type persisted = {
  p_stats : stats;
  p_last_time : int;
  p_windows : (int * int * int) list;  (* pid, ltlt, nt_used; by pid *)
  p_store : (int * Range.t list) list;  (* Store.dump *)
  p_prov : Provenance.persisted option;
}

let persist t =
  {
    p_stats = stats t;
    p_last_time = t.last_time;
    p_windows =
      List.sort compare
        (Hashtbl.fold
           (fun pid w acc -> (pid, w.ltlt, w.nt_used) :: acc)
           t.windows []);
    p_store = t.store.Store.dump ();
    p_prov = Option.map Provenance.persist t.prov;
  }

(* Rebuild into a fresh tracker of the same policy/backend/prov mode.
   Ranges go through the raw store [add] — not [taint_source] — so the
   provenance sidecar (restored from its own record) and the stats
   counters are not perturbed; one [update_peaks] at the end syncs the
   gauges and the Fig. 15 series to the restored occupancy.  Peaks are
   ≥ current occupancy by invariant, so restoring stats first keeps the
   persisted maxima. *)
let restore t p =
  t.taint_ops <- p.p_stats.taint_ops;
  t.untaint_ops <- p.p_stats.untaint_ops;
  t.lookups <- p.p_stats.lookups;
  t.tainted_loads <- p.p_stats.tainted_loads;
  t.max_tainted_bytes <- p.p_stats.max_tainted_bytes;
  t.max_ranges <- p.p_stats.max_ranges;
  t.events <- p.p_stats.events;
  t.last_time <- p.p_last_time;
  List.iter
    (fun (pid, ltlt, nt_used) ->
      Hashtbl.replace t.windows pid { ltlt; nt_used })
    p.p_windows;
  List.iter
    (fun (pid, ranges) -> List.iter (t.store.Store.add ~pid) ranges)
    p.p_store;
  (match (t.prov, p.p_prov) with
  | Some prov, Some pp -> Provenance.restore prov pp
  | _ -> ());
  update_peaks t ~time:t.last_time
