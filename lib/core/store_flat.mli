(** Imperative flat taint set — the [Flat] backend of {!Store}.

    A sorted interval array (parallel [lo]/[hi] int arrays) holding the
    canonical maximal disjoint closed ranges, exactly like {!Range_set}
    but mutable and allocation-free on the hot path: overlap queries are
    a binary search over a flat array, insertion coalesces in place, and
    removal splices without tombstones.  Capacity grows by amortised
    doubling.  Semantically byte-for-byte equivalent to {!Range_set} —
    the property suite in [test/test_store.ml] proves it against the
    {!Store_bytemap} oracle. *)

type t

val create : unit -> t
val is_empty : t -> bool

val add : t -> Pift_util.Range.t -> unit
(** Insert, merging with every overlapping-or-adjacent entry. O(log n)
    search + splice (O(n) worst-case move, amortised by coalescing). *)

val remove : t -> Pift_util.Range.t -> unit
(** Untaint, trimming or splitting partially covered entries in place. *)

val mem_overlap : t -> Pift_util.Range.t -> bool
(** O(log n) binary search. *)

val covers : t -> Pift_util.Range.t -> bool

val bytes_in : t -> Pift_util.Range.t -> int
(** Tainted bytes inside the query window: the summed overlap of every
    entry with the range.  O(log n + entries in window); the {!Store}
    hybrid backend reads page occupancy through this. *)

val overlapping : t -> Pift_util.Range.t -> Pift_util.Range.t list
(** Entries overlapping the query, clipped to it, in increasing address
    order. *)

val cardinal : t -> int
(** O(1). *)

val total_bytes : t -> int
(** O(1). *)

val ranges : t -> Pift_util.Range.t list
(** Maximal ranges in increasing address order. *)

val pp : Format.formatter -> t -> unit
