module Range = Pift_util.Range

type backend = Store_backend.backend = Functional | Flat | Hybrid | Bytemap

let backend_to_string = Store_backend.backend_to_string
let backend_of_string = Store_backend.backend_of_string
let all_backends = Store_backend.all_backends

type t = {
  add : pid:int -> Range.t -> unit;
  remove : pid:int -> Range.t -> unit;
  overlaps : pid:int -> Range.t -> bool;
  tainted_bytes : unit -> int;
  range_count : unit -> int;
  ranges : pid:int -> Range.t list;
  release_pid : pid:int -> unit;
  dump : unit -> (int * Range.t list) list;
}

let create ?(backend = Functional) () =
  let sets : (int, Store_backend.set) Hashtbl.t = Hashtbl.create 4 in
  (* Mutating paths may materialise a backend set for a new PID; read
     paths must not — a sink check on a never-seen PID would otherwise
     grow the table and inflate range_count/memory on pure queries. *)
  let set pid =
    match Hashtbl.find_opt sets pid with
    | Some s -> s
    | None ->
        let s = Store_backend.make backend in
        Hashtbl.add sets pid s;
        s
  in
  let peek pid = Hashtbl.find_opt sets pid in
  (* Store-wide totals are maintained per-op from the single touched
     set's O(1) counters instead of re-folding the whole table: the
     tracker reads both on every taint/untaint op (update_peaks), which
     made the old Hashtbl.fold quadratic-ish on multi-PID replays. *)
  let total_bytes = ref 0 in
  let total_count = ref 0 in
  let mutate pid op r =
    let s = set pid in
    let bytes = s.Store_backend.s_bytes ()
    and count = s.Store_backend.s_count () in
    op s r;
    total_bytes := !total_bytes + s.Store_backend.s_bytes () - bytes;
    total_count := !total_count + s.Store_backend.s_count () - count
  in
  {
    add = (fun ~pid r -> mutate pid (fun s -> s.Store_backend.s_add) r);
    remove = (fun ~pid r -> mutate pid (fun s -> s.Store_backend.s_remove) r);
    overlaps =
      (fun ~pid r ->
        match peek pid with
        | Some s -> s.Store_backend.s_overlaps r
        | None -> false);
    tainted_bytes = (fun () -> !total_bytes);
    range_count = (fun () -> !total_count);
    ranges =
      (fun ~pid ->
        match peek pid with
        | Some s -> s.Store_backend.s_ranges ()
        | None -> []);
    release_pid =
      (fun ~pid ->
        match peek pid with
        | None -> ()
        | Some s ->
            total_bytes := !total_bytes - s.Store_backend.s_bytes ();
            total_count := !total_count - s.Store_backend.s_count ();
            Hashtbl.remove sets pid);
    (* Snapshot extraction: every pid's canonical range list, sorted by
       pid so the dump is deterministic whatever the Hashtbl order.
       Pids whose set emptied out are omitted — a restored store is
       semantically identical (overlaps/ranges/counters agree), it just
       doesn't resurrect empty per-pid sets. *)
    dump =
      (fun () ->
        List.sort
          (fun (p1, _) (p2, _) -> compare (p1 : int) p2)
          (Hashtbl.fold
             (fun pid s acc ->
               match s.Store_backend.s_ranges () with
               | [] -> acc
               | rs -> (pid, rs) :: acc)
             sets []));
  }

let with_metrics registry inner =
  let module Counter = Pift_obs.Metric.Counter in
  let module Gauge = Pift_obs.Metric.Gauge in
  let c help name = Pift_obs.Registry.counter registry ~help name in
  let adds = c "range insertions into the taint store" "pift_store_add_ops_total" in
  let removes = c "range removals from the taint store" "pift_store_remove_ops_total" in
  let merges =
    c "insertions coalesced into an existing range"
      "pift_store_merge_ops_total"
  in
  let ranges_gauge =
    Pift_obs.Registry.gauge registry ~help:"distinct ranges held by the store"
      "pift_store_ranges"
  in
  let sync () = Gauge.set ranges_gauge (inner.range_count ()) in
  {
    inner with
    add =
      (fun ~pid r ->
        let before = inner.range_count () in
        inner.add ~pid r;
        Counter.incr adds;
        (* A merge (or full overlap) is an insertion that did not grow the
           range count — the coalescing path of a backend's add / the
           range-cache update of Storage.insert. *)
        if inner.range_count () <= before then Counter.incr merges;
        sync ());
    remove =
      (fun ~pid r ->
        inner.remove ~pid r;
        Counter.incr removes;
        sync ());
    release_pid =
      (fun ~pid ->
        inner.release_pid ~pid;
        sync ());
  }

let of_storage storage =
  {
    add = (fun ~pid r -> Storage.insert storage ~pid r);
    remove = (fun ~pid r -> Storage.remove storage ~pid r);
    overlaps = (fun ~pid r -> Storage.lookup storage ~pid r);
    tainted_bytes = (fun () -> Storage.tainted_bytes storage);
    range_count = (fun () -> Storage.range_count storage);
    ranges = (fun ~pid -> Storage.ranges storage ~pid);
    release_pid = (fun ~pid -> Storage.release_pid storage ~pid);
    (* The range cache is lossy (drop policy) and not a durable source
       of truth; snapshotting it would silently persist a partial
       state, so it refuses instead. *)
    dump = (fun () -> failwith "Store.of_storage: dump unsupported");
  }
