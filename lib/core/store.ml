module Range = Pift_util.Range

type backend = Store_backend.backend = Functional | Flat | Bytemap

let backend_to_string = Store_backend.backend_to_string
let backend_of_string = Store_backend.backend_of_string
let all_backends = Store_backend.all_backends

type t = {
  add : pid:int -> Range.t -> unit;
  remove : pid:int -> Range.t -> unit;
  overlaps : pid:int -> Range.t -> bool;
  tainted_bytes : unit -> int;
  range_count : unit -> int;
  ranges : pid:int -> Range.t list;
}

let create ?(backend = Functional) () =
  let sets : (int, Store_backend.set) Hashtbl.t = Hashtbl.create 4 in
  let set pid =
    match Hashtbl.find_opt sets pid with
    | Some s -> s
    | None ->
        let s = Store_backend.make backend in
        Hashtbl.add sets pid s;
        s
  in
  let sum f = Hashtbl.fold (fun _ s acc -> acc + f s) sets 0 in
  {
    add = (fun ~pid r -> (set pid).Store_backend.s_add r);
    remove = (fun ~pid r -> (set pid).Store_backend.s_remove r);
    overlaps = (fun ~pid r -> (set pid).Store_backend.s_overlaps r);
    tainted_bytes =
      (fun () -> sum (fun s -> s.Store_backend.s_bytes ()));
    range_count = (fun () -> sum (fun s -> s.Store_backend.s_count ()));
    ranges = (fun ~pid -> (set pid).Store_backend.s_ranges ());
  }

let with_metrics registry inner =
  let module Counter = Pift_obs.Metric.Counter in
  let module Gauge = Pift_obs.Metric.Gauge in
  let c help name = Pift_obs.Registry.counter registry ~help name in
  let adds = c "range insertions into the taint store" "pift_store_add_ops_total" in
  let removes = c "range removals from the taint store" "pift_store_remove_ops_total" in
  let merges =
    c "insertions coalesced into an existing range"
      "pift_store_merge_ops_total"
  in
  let ranges_gauge =
    Pift_obs.Registry.gauge registry ~help:"distinct ranges held by the store"
      "pift_store_ranges"
  in
  let sync () = Gauge.set ranges_gauge (inner.range_count ()) in
  {
    inner with
    add =
      (fun ~pid r ->
        let before = inner.range_count () in
        inner.add ~pid r;
        Counter.incr adds;
        (* A merge (or full overlap) is an insertion that did not grow the
           range count — the coalescing path of a backend's add / the
           range-cache update of Storage.insert. *)
        if inner.range_count () <= before then Counter.incr merges;
        sync ());
    remove =
      (fun ~pid r ->
        inner.remove ~pid r;
        Counter.incr removes;
        sync ());
  }

let of_storage storage =
  {
    add = (fun ~pid r -> Storage.insert storage ~pid r);
    remove = (fun ~pid r -> Storage.remove storage ~pid r);
    overlaps = (fun ~pid r -> Storage.lookup storage ~pid r);
    tainted_bytes = (fun () -> Storage.tainted_bytes storage);
    range_count = (fun () -> Storage.range_count storage);
    ranges = (fun ~pid -> Storage.ranges storage ~pid);
  }
