module Range = Pift_util.Range

(* Invariant: entries [0 .. len) are sorted by [lo], pairwise disjoint
   and non-adjacent (so both [lo] and [hi] are strictly increasing and
   the set is the canonical list of maximal closed ranges — the same
   canonical form {!Range_set} keeps).  [bytes] mirrors the entries so
   [total_bytes] is O(1).  Growth doubles the parallel arrays; removal
   splices in place, so there are never tombstones to skip on lookup. *)
type t = {
  mutable lo : int array;
  mutable hi : int array;
  mutable len : int;
  mutable bytes : int;
}

let initial_capacity = 8

let create () =
  {
    lo = Array.make initial_capacity 0;
    hi = Array.make initial_capacity 0;
    len = 0;
    bytes = 0;
  }

let is_empty t = t.len = 0
let cardinal t = t.len
let total_bytes t = t.bytes

let ensure_capacity t n =
  if Array.length t.lo < n then begin
    let cap = ref (Array.length t.lo) in
    while !cap < n do
      cap := !cap * 2
    done;
    let lo = Array.make !cap 0 and hi = Array.make !cap 0 in
    Array.blit t.lo 0 lo 0 t.len;
    Array.blit t.hi 0 hi 0 t.len;
    t.lo <- lo;
    t.hi <- hi
  end

(* Smallest index whose entry ends at or after [x]; [len] if none.  [hi]
   is strictly increasing, so this is a plain binary search. *)
let first_hi_ge t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.hi.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

(* Smallest index whose entry starts strictly after [x]; [len] if none. *)
let first_lo_gt t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.lo.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

(* Open a gap of [n] entries at index [i] (shifting the tail right). *)
let open_gap t i n =
  ensure_capacity t (t.len + n);
  Array.blit t.lo i t.lo (i + n) (t.len - i);
  Array.blit t.hi i t.hi (i + n) (t.len - i);
  t.len <- t.len + n

(* Close a gap of [n] entries at index [i] (shifting the tail left). *)
let close_gap t i n =
  Array.blit t.lo (i + n) t.lo i (t.len - i - n);
  Array.blit t.hi (i + n) t.hi i (t.len - i - n);
  t.len <- t.len - n

let entry_bytes t i = t.hi.(i) - t.lo.(i) + 1

let add t r =
  let l = Range.lo r and h = Range.hi r in
  (* Merge window: every entry overlapping-or-adjacent to [l, h], i.e.
     ending at or after l - 1 and starting at or before h + 1 (closed
     ranges: [a,b] and [b+1,c] are adjacent and must coalesce). *)
  let i = first_hi_ge t (l - 1) in
  let j = first_lo_gt t (h + 1) - 1 in
  if i > j then begin
    (* No neighbour to coalesce with: splice in at [i]. *)
    open_gap t i 1;
    t.lo.(i) <- l;
    t.hi.(i) <- h;
    t.bytes <- t.bytes + (h - l + 1)
  end
  else begin
    let nl = min l t.lo.(i) and nh = max h t.hi.(j) in
    let removed = ref 0 in
    for k = i to j do
      removed := !removed + entry_bytes t k
    done;
    t.lo.(i) <- nl;
    t.hi.(i) <- nh;
    if j > i then close_gap t (i + 1) (j - i);
    t.bytes <- t.bytes - !removed + (nh - nl + 1)
  end

let remove t r =
  let l = Range.lo r and h = Range.hi r in
  (* Overlap window only — adjacency does not matter for removal. *)
  let i = first_hi_ge t l in
  let j = first_lo_gt t h - 1 in
  if i <= j then begin
    let removed = ref 0 in
    for k = i to j do
      removed := !removed + entry_bytes t k
    done;
    (* Surviving pieces: a left stub of entry [i] and/or a right stub of
       entry [j].  0, 1, or 2 pieces replace the j - i + 1 old entries. *)
    let left = if t.lo.(i) < l then Some (t.lo.(i), l - 1) else None in
    let right = if t.hi.(j) > h then Some (h + 1, t.hi.(j)) else None in
    let pieces =
      match (left, right) with
      | None, None -> []
      | Some p, None | None, Some p -> [ p ]
      | Some p, Some q -> [ p; q ]
    in
    let np = List.length pieces in
    let old = j - i + 1 in
    if np > old then open_gap t i (np - old)
    else if np < old then close_gap t i (old - np);
    List.iteri
      (fun k (pl, ph) ->
        t.lo.(i + k) <- pl;
        t.hi.(i + k) <- ph)
      pieces;
    let kept =
      List.fold_left (fun acc (pl, ph) -> acc + (ph - pl + 1)) 0 pieces
    in
    t.bytes <- t.bytes - !removed + kept
  end

(* Indices of every entry overlapping [r]; empty iff i > j. *)
let overlap_window t r =
  let i = first_hi_ge t (Range.lo r) in
  let j = first_lo_gt t (Range.hi r) - 1 in
  (i, j)

let bytes_in t r =
  let i, j = overlap_window t r in
  let total = ref 0 in
  for k = i to j do
    total := !total + (min t.hi.(k) (Range.hi r) - max t.lo.(k) (Range.lo r) + 1)
  done;
  !total

let overlapping t r =
  let i, j = overlap_window t r in
  let out = ref [] in
  for k = j downto i do
    out :=
      Range.make (max t.lo.(k) (Range.lo r)) (min t.hi.(k) (Range.hi r))
      :: !out
  done;
  !out

let mem_overlap t r =
  (* Last entry starting at or before the query's end; it overlaps iff
     it ends at or after the query's start. *)
  let j = first_lo_gt t (Range.hi r) - 1 in
  j >= 0 && t.hi.(j) >= Range.lo r

let covers t r =
  let j = first_lo_gt t (Range.lo r) - 1 in
  j >= 0 && t.hi.(j) >= Range.hi r

let ranges t =
  List.init t.len (fun k -> Range.make t.lo.(k) t.hi.(k))

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Range.pp)
    (ranges t)
