(** Single-set taint-store backends, beneath both {!Store} (per-process
    software state) and {!Storage} (the range cache's secondary store).

    One [set] is one process's tainted-range state in the canonical
    closed-range form: maximal, pairwise disjoint, non-adjacent ranges.
    All backends are semantically identical — the differential property
    suite ([test/test_store.ml]) proves the fast ones equal to the
    [Bytemap] oracle — so swapping backends can never change a verdict,
    a stat, or a byte of CLI output. *)

type backend =
  | Functional  (** persistent {!Range_set} — the original reference *)
  | Flat  (** sorted interval array, imperative ({!Store_flat}) *)
  | Hybrid
      (** sparse flat intervals + promoted dense bit-pages
          ({!Store_hybrid}) *)
  | Bytemap  (** one bit per byte; testing oracle ({!Store_bytemap}) *)

val backend_to_string : backend -> string
val backend_of_string : string -> backend option
val all_backends : backend list

type set = {
  s_add : Pift_util.Range.t -> unit;
  s_remove : Pift_util.Range.t -> unit;
  s_overlaps : Pift_util.Range.t -> bool;
  s_bytes : unit -> int;
  s_count : unit -> int;
  s_ranges : unit -> Pift_util.Range.t list;  (** ascending, canonical *)
}

val make : backend -> set
(** A fresh empty set of the given backend. *)
