(** First-order performance model of the PIFT hardware module.

    The paper argues PIFT's taint processing runs concurrently with the
    memory subsystem and only stalls the CPU on slow-path events
    (secondary-storage lookups after a primary miss).  This model turns
    trace and storage statistics into the cycle accounting behind that
    argument, and contrasts it with instruction-grained software DIFT
    (the "order of magnitude less frequent" load/store claim of §1). *)

type costs = {
  base_cpi : float;  (** cycles per instruction without tracking *)
  primary_lookup : float;  (** hidden behind the memory access: 0 stall *)
  secondary_lookup : float;  (** main-memory search on a primary miss *)
  insert : float;  (** hidden: performed off the critical path *)
  sw_dift_per_insn : float;
      (** extra cycles per instruction for inline software DIFT
          (binary-translation systems report 3–10x; we default 4.0) *)
}

val default_costs : costs

type report = {
  total_insns : int;
  memory_insns : int;
  pift_events : int;  (** loads + stores PIFT actually inspects *)
  pift_stall_cycles : float;
  pift_overhead_pct : float;
  sw_dift_overhead_pct : float;
  event_reduction : float;
      (** ratio of all instructions to PIFT-processed events *)
}

val estimate :
  ?costs:costs ->
  total_insns:int ->
  loads:int ->
  stores:int ->
  secondary_hits:int ->
  unit ->
  report

val observe : metrics:Pift_obs.Registry.t -> report -> unit
(** Export the report into a registry as [pift_hw_*] gauges (event
    reduction, modelled stall cycles, overhead percentages). *)

val pp_report : Format.formatter -> report -> unit
