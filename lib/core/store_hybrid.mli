(** Adaptive hybrid taint set — the [Hybrid] backend of {!Store}.

    Mirrors the paper's range-cache hardware model: taint stays a
    {!Store_flat} sorted-interval array where it is sparse, while any
    page whose occupancy reaches half the page size is {e promoted} to
    a bit-per-byte dense page (O(1) taint/untaint inside it, no
    interval splice traffic under fragmentation), and a dense page
    decaying below one eighth occupancy is {e demoted} back to
    intervals.  The promote/demote thresholds are deliberately apart
    (hysteresis) so churn at one boundary cannot thrash.

    Observable state is canonical — maximal disjoint non-adjacent
    closed ranges, byte-for-byte equal to {!Range_set} / {!Store_flat}
    / the {!Store_bytemap} oracle (proven by the differential property
    suite in [test/test_store.ml]), including ranges that straddle the
    sparse/dense seam. *)

type t

val create : ?page_bits:int -> unit -> t
(** [page_bits] is log2 of the page size, default [8] (256-byte pages);
    promotion fires at occupancy >= page/2, demotion below page/8.
    Raises [Invalid_argument] outside [4..20]. *)

val is_empty : t -> bool
val add : t -> Pift_util.Range.t -> unit
val remove : t -> Pift_util.Range.t -> unit
val mem_overlap : t -> Pift_util.Range.t -> bool

val cardinal : t -> int
(** Canonical maximal-range count across both representations.
    O(dense pages * log sparse entries). *)

val total_bytes : t -> int
(** O(1). *)

val ranges : t -> Pift_util.Range.t list
(** Canonical maximal ranges in increasing address order. *)

val page_size : t -> int

val dense_pages : t -> int
(** Currently promoted pages. *)

val promotions : t -> int
(** Lifetime sparse->dense promotions. *)

val demotions : t -> int
(** Lifetime dense->sparse demotions (a fully drained page counts). *)

val pp : Format.formatter -> t -> unit
