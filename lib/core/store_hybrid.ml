module Range = Pift_util.Range

(* Adaptive hybrid taint set — the paper's range-cache intuition in
   software: taint is sparse ranges almost everywhere, with a few hot
   dense regions (decoded buffers, string pools) where interval
   representations degrade into per-byte fragments.  Sparse regions
   live in a {!Store_flat} sorted-interval array; any page whose flat
   occupancy reaches [promote_bytes] is promoted to a bit-per-byte
   dense page (O(1) updates, no splice traffic), and a dense page that
   decays below [demote_bytes] is demoted back to intervals.  The two
   thresholds are separated (hysteresis) so a page oscillating around
   one boundary does not thrash.

   Invariant: the flat array never holds a byte inside a dense page's
   span — each structure owns its addresses exclusively — so observable
   state is the disjoint union of the two.  Canonical counts and range
   lists stitch the seam back together: a flat entry or a neighbouring
   page run that ends exactly at a dense page's first byte (hi + 1 = lo,
   the closed-interval adjacency rule) is one canonical range, not
   two. *)

type page = {
  p_base : int;  (* first address of the page *)
  bits : Bytes.t;
  mutable pop : int;  (* set bits *)
  mutable runs : int;  (* maximal set-bit runs within the page *)
}

type t = {
  page_bits : int;
  page_size : int;
  promote_bytes : int;
  demote_bytes : int;
  sparse : Store_flat.t;
  pages : (int, page) Hashtbl.t;  (* page index -> dense page *)
  mutable dense_bytes : int;  (* sum of [pop] over pages *)
  mutable dense_runs : int;  (* sum of [runs] over pages *)
  mutable promotions : int;
  mutable demotions : int;
}

let default_page_bits = 8

let create ?(page_bits = default_page_bits) () =
  if page_bits < 4 || page_bits > 20 then
    invalid_arg "Store_hybrid.create: page_bits out of [4,20]";
  let page_size = 1 lsl page_bits in
  {
    page_bits;
    page_size;
    (* Promote at >= 1/2 occupancy, demote below 1/8: mirrors the
       range cache's dense-region escape hatch while the gap keeps
       promotion sticky under churn. *)
    promote_bytes = page_size / 2;
    demote_bytes = page_size / 8;
    sparse = Store_flat.create ();
    pages = Hashtbl.create 8;
    dense_bytes = 0;
    dense_runs = 0;
    promotions = 0;
    demotions = 0;
  }

let page_size t = t.page_size
let dense_pages t = Hashtbl.length t.pages
let promotions t = t.promotions
let demotions t = t.demotions
let page_of t a = a lsr t.page_bits
let page_lo t p = p lsl t.page_bits
let page_hi t p = page_lo t p + t.page_size - 1

(* --- per-page bit plumbing --------------------------------------------- *)

let bit_get pg i =
  Char.code (Bytes.unsafe_get pg.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Set/clear maintain [pop] and [runs] locally: a set bit joins, extends
   or starts a run depending on its two neighbours, symmetrically for
   clear.  Page-size loops only ever run over small pages (<= 1 MiB by
   the [create] guard, 256 B by default). *)
let bit_set t pg i =
  if not (bit_get pg i) then begin
    let b = Char.code (Bytes.get pg.bits (i lsr 3)) in
    Bytes.set pg.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))));
    pg.pop <- pg.pop + 1;
    t.dense_bytes <- t.dense_bytes + 1;
    let left = i > 0 && bit_get pg (i - 1) in
    let right = i < t.page_size - 1 && bit_get pg (i + 1) in
    let delta = 1 - (if left then 1 else 0) - (if right then 1 else 0) in
    pg.runs <- pg.runs + delta;
    t.dense_runs <- t.dense_runs + delta
  end

let bit_clear t pg i =
  if bit_get pg i then begin
    let b = Char.code (Bytes.get pg.bits (i lsr 3)) in
    Bytes.set pg.bits (i lsr 3)
      (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff));
    pg.pop <- pg.pop - 1;
    t.dense_bytes <- t.dense_bytes - 1;
    let left = i > 0 && bit_get pg (i - 1) in
    let right = i < t.page_size - 1 && bit_get pg (i + 1) in
    let delta = (if left then 1 else 0) + (if right then 1 else 0) - 1 in
    pg.runs <- pg.runs + delta;
    t.dense_runs <- t.dense_runs + delta
  end

let page_mem pg ~lo ~hi =
  let rec scan i = i <= hi && (bit_get pg i || scan (i + 1)) in
  scan lo

(* Maximal set-bit runs of a page as absolute closed ranges. *)
let page_runs pg ~size =
  let out = ref [] in
  let start = ref (-1) in
  for i = 0 to size - 1 do
    if bit_get pg i then begin
      if !start < 0 then start := i
    end
    else if !start >= 0 then begin
      out := Range.make (pg.p_base + !start) (pg.p_base + i - 1) :: !out;
      start := -1
    end
  done;
  if !start >= 0 then
    out := Range.make (pg.p_base + !start) (pg.p_base + size - 1) :: !out;
  List.rev !out

(* --- promotion / demotion ---------------------------------------------- *)

let promote t p =
  let span = Range.make (page_lo t p) (page_hi t p) in
  let entries = Store_flat.overlapping t.sparse span in
  Store_flat.remove t.sparse span;
  let pg =
    {
      p_base = page_lo t p;
      bits = Bytes.make (t.page_size / 8) '\000';
      pop = 0;
      runs = 0;
    }
  in
  Hashtbl.add t.pages p pg;
  List.iter
    (fun r ->
      for a = Range.lo r to Range.hi r do
        bit_set t pg (a - pg.p_base)
      done)
    entries;
  t.promotions <- t.promotions + 1

let demote t p pg =
  Hashtbl.remove t.pages p;
  t.dense_bytes <- t.dense_bytes - pg.pop;
  t.dense_runs <- t.dense_runs - pg.runs;
  List.iter (Store_flat.add t.sparse) (page_runs pg ~size:t.page_size);
  t.demotions <- t.demotions + 1

(* --- mutation ----------------------------------------------------------- *)

(* Walk [r]'s page span once: dense segments go straight to page bits,
   runs of non-dense pages coalesce into single flat spans (so the flat
   array sees one splice, not one per page). *)
let iter_segments t r ~dense ~sparse =
  let lo = Range.lo r and hi = Range.hi r in
  let pending_lo = ref (-1) in
  let flush upto =
    if !pending_lo >= 0 then begin
      sparse (Range.make !pending_lo upto);
      pending_lo := -1
    end
  in
  for p = page_of t lo to page_of t hi do
    let seg_lo = max lo (page_lo t p) and seg_hi = min hi (page_hi t p) in
    match Hashtbl.find_opt t.pages p with
    | Some pg ->
        flush (seg_lo - 1);
        dense pg ~lo:(seg_lo - pg.p_base) ~hi:(seg_hi - pg.p_base)
    | None -> if !pending_lo < 0 then pending_lo := seg_lo
  done;
  flush hi

let add t r =
  iter_segments t r
    ~dense:(fun pg ~lo ~hi ->
      for i = lo to hi do
        bit_set t pg i
      done)
    ~sparse:(fun span ->
      Store_flat.add t.sparse span;
      (* Occupancy can only have grown under the added span: re-read it
         per page and promote the ones that crossed the threshold. *)
      for p = page_of t (Range.lo span) to page_of t (Range.hi span) do
        if
          (not (Hashtbl.mem t.pages p))
          && Store_flat.bytes_in t.sparse
               (Range.make (page_lo t p) (page_hi t p))
             >= t.promote_bytes
        then promote t p
      done)

let remove t r =
  let touched = ref [] in
  iter_segments t r
    ~dense:(fun pg ~lo ~hi ->
      for i = lo to hi do
        bit_clear t pg i
      done;
      touched := pg :: !touched)
    ~sparse:(fun span -> Store_flat.remove t.sparse span);
  (* Decay: fully drained pages vanish, nearly drained ones fall back
     to intervals. *)
  List.iter
    (fun pg ->
      let p = page_of t pg.p_base in
      if Hashtbl.mem t.pages p && pg.pop < t.demote_bytes then demote t p pg)
    !touched

(* --- queries ------------------------------------------------------------ *)

let mem_overlap t r =
  Store_flat.mem_overlap t.sparse r
  ||
  let lo = Range.lo r and hi = Range.hi r in
  let rec pages p =
    p <= page_of t hi
    && ((match Hashtbl.find_opt t.pages p with
        | Some pg ->
            page_mem pg
              ~lo:(max lo (page_lo t p) - pg.p_base)
              ~hi:(min hi (page_hi t p) - pg.p_base)
        | None -> false)
       || pages (p + 1))
  in
  pages (page_of t lo)

let total_bytes t = Store_flat.total_bytes t.sparse + t.dense_bytes
let is_empty t = total_bytes t = 0

(* A byte is tainted iff its owning structure holds it; used only at
   page seams, where [a] is never inside a dense page other than [p']. *)
let byte_tainted t a =
  a >= 0
  &&
  match Hashtbl.find_opt t.pages (page_of t a) with
  | Some pg -> bit_get pg (a - pg.p_base)
  | None -> Store_flat.mem_overlap t.sparse (Range.byte a)

(* Canonical range count: per-structure counts, minus one for every page
   seam where two runs from different structures are adjacent and thus
   one canonical range.  Each dense page accounts for the seam at its
   own left edge (against flat or the previous page) and at its right
   edge only against flat — page-to-page seams belong to the right
   page's left edge, so nothing is counted twice.  O(pages * log n). *)
let seam_joins t =
  Hashtbl.fold
    (fun p pg acc ->
      let acc =
        if
          pg.pop > 0 && bit_get pg 0
          && page_lo t p > 0
          && byte_tainted t (page_lo t p - 1)
        then acc + 1
        else acc
      in
      if
        pg.pop > 0
        && bit_get pg (t.page_size - 1)
        && (not (Hashtbl.mem t.pages (p + 1)))
        && Store_flat.mem_overlap t.sparse (Range.byte (page_hi t p + 1))
      then acc + 1
      else acc)
    t.pages 0

let cardinal t = Store_flat.cardinal t.sparse + t.dense_runs - seam_joins t

(* Merge the two sorted disjoint sources into the canonical maximal
   range list, coalescing across seams. *)
let ranges t =
  let dense =
    Hashtbl.fold (fun _ pg acc -> page_runs pg ~size:t.page_size :: acc)
      t.pages []
    |> List.concat
    |> List.sort Range.compare
  in
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
        if Range.lo x <= Range.lo y then x :: merge xs' ys
        else y :: merge xs ys'
  in
  let rec coalesce = function
    | a :: b :: rest when Range.hi a + 1 >= Range.lo b ->
        coalesce (Range.make (Range.lo a) (max (Range.hi a) (Range.hi b)) :: rest)
    | a :: rest -> a :: coalesce rest
    | [] -> []
  in
  coalesce (merge (Store_flat.ranges t.sparse) dense)

let pp ppf t =
  Format.fprintf ppf "{%a | %d dense page(s)}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Range.pp)
    (ranges t) (dense_pages t)
