type costs = {
  base_cpi : float;
  primary_lookup : float;
  secondary_lookup : float;
  insert : float;
  sw_dift_per_insn : float;
}

let default_costs =
  {
    base_cpi = 1.0;
    primary_lookup = 0.0;
    secondary_lookup = 30.0;
    insert = 0.0;
    sw_dift_per_insn = 4.0;
  }

type report = {
  total_insns : int;
  memory_insns : int;
  pift_events : int;
  pift_stall_cycles : float;
  pift_overhead_pct : float;
  sw_dift_overhead_pct : float;
  event_reduction : float;
}

let estimate ?(costs = default_costs) ~total_insns ~loads ~stores
    ~secondary_hits () =
  if total_insns <= 0 then invalid_arg "Hw_model.estimate: empty trace";
  let memory_insns = loads + stores in
  let base_cycles = costs.base_cpi *. float_of_int total_insns in
  let stall =
    (costs.primary_lookup *. float_of_int loads)
    +. (costs.secondary_lookup *. float_of_int secondary_hits)
    +. (costs.insert *. float_of_int stores)
  in
  {
    total_insns;
    memory_insns;
    pift_events = memory_insns;
    pift_stall_cycles = stall;
    pift_overhead_pct = stall /. base_cycles *. 100.;
    sw_dift_overhead_pct =
      costs.sw_dift_per_insn *. float_of_int total_insns /. base_cycles
      *. 100.;
    event_reduction =
      (if memory_insns = 0 then Float.infinity
       else float_of_int total_insns /. float_of_int memory_insns);
  }

let observe ~metrics r =
  let module Gauge = Pift_obs.Metric.Gauge in
  let g help name = Pift_obs.Registry.gauge metrics ~help name in
  Gauge.set
    (g "instructions in the modelled trace" "pift_hw_total_insns")
    r.total_insns;
  Gauge.set
    (g "loads + stores PIFT inspects" "pift_hw_pift_events")
    r.pift_events;
  Gauge.set_float
    (g "modelled CPU stall cycles from slow-path lookups (Fig. 17)"
       "pift_hw_stall_cycles")
    r.pift_stall_cycles;
  Gauge.set_float
    (g "PIFT overhead over untracked execution, percent"
       "pift_hw_overhead_pct")
    r.pift_overhead_pct;
  Gauge.set_float
    (g "inline software DIFT overhead, percent" "pift_hw_sw_dift_overhead_pct")
    r.sw_dift_overhead_pct;
  Gauge.set_float
    (g "instructions per PIFT-processed event" "pift_hw_event_reduction")
    r.event_reduction

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>instructions: %d (memory: %d, %.1fx event reduction)@,\
     PIFT stall cycles: %.0f -> overhead %.3f%%@,\
     inline software DIFT overhead: %.0f%%@]"
    r.total_insns r.memory_insns r.event_reduction r.pift_stall_cycles
    r.pift_overhead_pct r.sw_dift_overhead_pct
