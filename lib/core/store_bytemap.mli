(** Trivially-correct bytemap taint set — the [Bytemap] oracle backend.

    One bit per byte address in a dense growable bitmap; every operation
    is a per-byte loop.  Too slow (and too dense) for real traces, but
    impossible to get subtly wrong at range boundaries — which is the
    point: the differential property suite replays the same operation
    sequences through the fast backends and this oracle and demands
    identical answers.  Testing only; the CLI never exposes it. *)

type t

val create : unit -> t
val is_empty : t -> bool
val add : t -> Pift_util.Range.t -> unit
val remove : t -> Pift_util.Range.t -> unit
val mem_overlap : t -> Pift_util.Range.t -> bool
val covers : t -> Pift_util.Range.t -> bool

val cardinal : t -> int
(** Number of maximal runs of tainted bytes — O(max address). *)

val total_bytes : t -> int
(** O(1) (a live population count). *)

val ranges : t -> Pift_util.Range.t list
(** Maximal runs in increasing address order. *)

val pp : Format.formatter -> t -> unit
