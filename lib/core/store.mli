(** Pluggable taint-state backends for the tracker.

    Algorithm 1 is defined over an abstract tainted-range state R; the
    software model backs it with {!Range_set} (exact, unbounded), while the
    hardware model backs it with the {!Storage} range cache (bounded,
    lossy under the drop policy).  The tracker is written once against
    this record of operations. *)

type t = {
  add : pid:int -> Pift_util.Range.t -> unit;
  remove : pid:int -> Pift_util.Range.t -> unit;
  overlaps : pid:int -> Pift_util.Range.t -> bool;
  tainted_bytes : unit -> int;  (** across all processes *)
  range_count : unit -> int;  (** across all processes *)
  ranges : pid:int -> Pift_util.Range.t list;
}

val range_sets : unit -> t
(** Exact per-process {!Range_set} state — the software reference the
    paper's trace-driven evaluation uses. *)

val of_storage : Storage.t -> t
(** State held in a hardware range cache; behaviour (and possible false
    negatives) follow the cache's eviction policy. *)

val with_metrics : Pift_obs.Registry.t -> t -> t
(** Same backend, with [pift_store_*] add/remove/merge counters and a
    range-count gauge updated on every mutation.  Merge detection reads
    the range count around each insertion, so wrap only when observing. *)
