(** Pluggable taint-state backends for the tracker.

    Algorithm 1 is defined over an abstract tainted-range state R; the
    software model backs it with a per-process {!Store_backend.set}
    (exact, unbounded — pick the representation with [backend]), while
    the hardware model backs it with the {!Storage} range cache
    (bounded, lossy under the drop policy).  The tracker is written once
    against this record of operations.

    All exact backends are semantically identical — proven equal to the
    {!Store_bytemap} oracle by the differential property suite — so the
    choice is purely a performance knob: verdicts, stats, and CLI output
    are byte-for-byte the same whichever one runs. *)

type backend = Store_backend.backend =
  | Functional
      (** persistent {!Range_set} map — O(log n), allocating; the
          original reference implementation *)
  | Flat
      (** imperative sorted interval array ({!Store_flat}) — binary
          search lookups, in-place coalescing, no per-op allocation *)
  | Hybrid
      (** adaptive sparse/dense split ({!Store_hybrid}) — flat
          intervals for sparse regions, bit-per-byte pages promoted
          where taint runs dense, demoted again on decay; the paper's
          range-cache model as a software backend *)
  | Bytemap
      (** one bit per byte ({!Store_bytemap}); trivially correct oracle,
          for tests only — never exposed on the CLI *)

val backend_to_string : backend -> string
val backend_of_string : string -> backend option
val all_backends : backend list

type t = {
  add : pid:int -> Pift_util.Range.t -> unit;
  remove : pid:int -> Pift_util.Range.t -> unit;
  overlaps : pid:int -> Pift_util.Range.t -> bool;
  tainted_bytes : unit -> int;  (** across all processes *)
  range_count : unit -> int;  (** across all processes *)
  ranges : pid:int -> Pift_util.Range.t list;
  release_pid : pid:int -> unit;
      (** Tenant eviction: drop every range held for the pid and fold
          its contribution out of [tainted_bytes] / [range_count].  A
          pid never seen is a no-op; a released pid behaves exactly like
          a fresh one. *)
  dump : unit -> (int * Pift_util.Range.t list) list;
      (** Snapshot extraction: every pid with live taint, sorted by pid,
          each with its canonical coalesced range list — deterministic
          across backends and Hashtbl orders.  Replaying [add] over a
          dump into a fresh store reproduces the original semantically
          (same [overlaps]/[ranges]/counters).  Raises [Failure] on
          {!of_storage} stores: the range cache is lossy, so persisting
          it would silently drop state. *)
}

val create : ?backend:backend -> unit -> t
(** Exact per-process taint state — the software reference the paper's
    trace-driven evaluation uses.  [backend] defaults to [Functional].

    Read paths ([overlaps], [ranges]) are pure: querying a PID the
    store has never seen allocates nothing and leaves [range_count] /
    memory untouched.  [tainted_bytes] and [range_count] are O(1) —
    maintained per-op from the touched set's own counters, never by
    folding over every process. *)

val of_storage : Storage.t -> t
(** State held in a hardware range cache; behaviour (and possible false
    negatives) follow the cache's eviction policy. *)

val with_metrics : Pift_obs.Registry.t -> t -> t
(** Same backend, with [pift_store_*] add/remove/merge counters and a
    range-count gauge updated on every mutation.  Merge detection reads
    the (O(1), incrementally tracked) range count around each
    insertion, so wrap only when observing. *)
