module Range = Pift_util.Range

(* One bit per byte address, in a growable bitmap.  Every operation is
   a per-byte loop — O(range length), with no cleverness to get wrong —
   which is exactly what makes it a usable oracle: the differential
   property suite checks the real backends against it.  The bitmap is
   dense from address 0, so keep test addresses modest (the suite stays
   under a few KiB); production traces go to the real backends. *)
type t = {
  mutable bits : Bytes.t;
  mutable max_addr : int;  (* highest address ever tainted; bounds scans *)
  mutable bytes : int;  (* population count *)
}

let create () = { bits = Bytes.make 64 '\000'; max_addr = -1; bytes = 0 }

let capacity t = Bytes.length t.bits * 8

let ensure t addr =
  if addr >= capacity t then begin
    let need = (addr / 8) + 1 in
    let cap = ref (Bytes.length t.bits) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bits = Bytes.make !cap '\000' in
    Bytes.blit t.bits 0 bits 0 (Bytes.length t.bits);
    t.bits <- bits
  end

let get t a =
  a < capacity t
  && Char.code (Bytes.get t.bits (a / 8)) land (1 lsl (a mod 8)) <> 0

let set t a =
  let b = Char.code (Bytes.get t.bits (a / 8)) in
  Bytes.set t.bits (a / 8) (Char.chr (b lor (1 lsl (a mod 8))))

let clear t a =
  let b = Char.code (Bytes.get t.bits (a / 8)) in
  Bytes.set t.bits (a / 8) (Char.chr (b land lnot (1 lsl (a mod 8)) land 0xff))

let is_empty t = t.bytes = 0
let total_bytes t = t.bytes

let add t r =
  ensure t (Range.hi r);
  for a = Range.lo r to Range.hi r do
    if not (get t a) then begin
      set t a;
      t.bytes <- t.bytes + 1
    end
  done;
  if Range.hi r > t.max_addr then t.max_addr <- Range.hi r

let remove t r =
  let top = min (Range.hi r) t.max_addr in
  for a = Range.lo r to top do
    if get t a then begin
      clear t a;
      t.bytes <- t.bytes - 1
    end
  done

let mem_overlap t r =
  let top = min (Range.hi r) t.max_addr in
  let rec scan a = a <= top && (get t a || scan (a + 1)) in
  scan (Range.lo r)

let covers t r =
  Range.hi r <= t.max_addr
  &&
  let rec scan a = a > Range.hi r || (get t a && scan (a + 1)) in
  scan (Range.lo r)

(* Maximal runs of set bits, in increasing address order. *)
let ranges t =
  let out = ref [] in
  let run_start = ref (-1) in
  for a = 0 to t.max_addr do
    if get t a then begin
      if !run_start < 0 then run_start := a
    end
    else if !run_start >= 0 then begin
      out := Range.make !run_start (a - 1) :: !out;
      run_start := -1
    end
  done;
  if !run_start >= 0 then out := Range.make !run_start t.max_addr :: !out;
  List.rev !out

let cardinal t = List.length (ranges t)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Range.pp)
    (ranges t)
