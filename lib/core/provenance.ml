module Range = Pift_util.Range
module Event = Pift_trace.Event
module Json = Pift_obs.Json
module Sset = Set.Make (String)

type window = {
  mutable ltlt : int;
  mutable nt_used : int;
  mutable labels : Sset.t;
  mutable opener_seq : int;
  mutable opener_range : Range.t option;
}

type propagation = {
  p_pid : int;
  p_store_seq : int;
  p_stored : Range.t;
  p_load_seq : int;
  p_loaded : Range.t;
  p_labels : string list;
}

(* Determinism audit: the per-pid label tables are only ever *iterated*
   for (a) [hit_labels], which folds into an Sset — commutative, so
   hashing order cannot leak into the result; (b) untainting, which
   removes the same range from independent per-label sets — commutative;
   and (c) [entries], which sorts before returning.  Every emission path
   goes through [labels_of]/[all_labels]/[entries] (all sorted), so
   provenance output is byte-identical across runs, backends and --jobs
   counts.

   The state is indexed pid-first: scan paths (hit_labels, untainting)
   touch only the probed pid's label sets, so per-event cost tracks that
   process's label count instead of the whole tenant population — the
   flat (pid, label) table scanned every table entry per event, which
   melted down once a long-lived engine held thousands of cold pids. *)
type t = {
  policy : Policy.t;
  backend : Store_backend.backend;
  (* pid -> label -> tainted ranges *)
  state : (int, (string, Store_backend.set) Hashtbl.t) Hashtbl.t;
  windows : (int, window) Hashtbl.t;
  mutable known_labels : Sset.t;
  mutable on_propagate : (propagation -> unit) option;
  mutable probes : int;
}

let create ?(policy = Policy.default) ?(backend = Store_backend.Functional) ()
    =
  {
    policy;
    backend;
    state = Hashtbl.create 16;
    windows = Hashtbl.create 4;
    known_labels = Sset.empty;
    on_propagate = None;
    probes = 0;
  }

let policy t = t.policy
let set_on_propagate t f = t.on_propagate <- Some f
let probes t = t.probes

let labels_for t pid =
  match Hashtbl.find_opt t.state pid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.add t.state pid tbl;
      tbl

let set_for t ~pid ~label =
  let tbl = labels_for t pid in
  match Hashtbl.find_opt tbl label with
  | Some s -> s
  | None ->
      let s = Store_backend.make t.backend in
      Hashtbl.add tbl label s;
      s

let window t pid =
  match Hashtbl.find_opt t.windows pid with
  | Some w -> w
  | None ->
      let w =
        { ltlt = min_int / 2; nt_used = 0; labels = Sset.empty;
          opener_seq = 0; opener_range = None }
      in
      Hashtbl.add t.windows pid w;
      w

let taint_source t ~pid ~label r =
  t.known_labels <- Sset.add label t.known_labels;
  (set_for t ~pid ~label).Store_backend.s_add r

let untaint_range t ~pid r =
  match Hashtbl.find_opt t.state pid with
  | None -> ()
  | Some tbl ->
      Hashtbl.iter
        (fun _ s ->
          t.probes <- t.probes + 1;
          s.Store_backend.s_remove r)
        tbl

let hit_labels t ~pid r =
  match Hashtbl.find_opt t.state pid with
  | None -> Sset.empty
  | Some tbl ->
      Hashtbl.fold
        (fun label s acc ->
          t.probes <- t.probes + 1;
          if s.Store_backend.s_overlaps r then Sset.add label acc else acc)
        tbl Sset.empty

let observe t e =
  match e.Event.access with
  | Event.Other -> ()
  | Event.Load r ->
      let labels = hit_labels t ~pid:e.pid r in
      if not (Sset.is_empty labels) then begin
        let w = window t e.pid in
        w.ltlt <- e.k;
        w.nt_used <- 0;
        w.labels <- labels;
        w.opener_seq <- e.seq;
        w.opener_range <- Some r
      end
  | Event.Store r ->
      let w = window t e.pid in
      if e.k <= w.ltlt + t.policy.Policy.ni && w.nt_used < t.policy.Policy.nt
      then begin
        Sset.iter
          (fun label -> (set_for t ~pid:e.pid ~label).Store_backend.s_add r)
          w.labels;
        w.nt_used <- w.nt_used + 1;
        match (t.on_propagate, w.opener_range) with
        | Some f, Some loaded when not (Sset.is_empty w.labels) ->
            f
              {
                p_pid = e.pid;
                p_store_seq = e.seq;
                p_stored = r;
                p_load_seq = w.opener_seq;
                p_loaded = loaded;
                p_labels = Sset.elements w.labels;
              }
        | _ -> ()
      end
      else if t.policy.Policy.untaint then
        match Hashtbl.find_opt t.state e.pid with
        | None -> ()
        | Some tbl ->
            Hashtbl.iter
              (fun _ s ->
                t.probes <- t.probes + 1;
                if s.Store_backend.s_overlaps r then s.Store_backend.s_remove r)
              tbl

let labels_of t ~pid r = Sset.elements (hit_labels t ~pid r)
let is_tainted t ~pid r = not (Sset.is_empty (hit_labels t ~pid r))
let all_labels t = Sset.elements t.known_labels

let tainted_bytes t ~label =
  Hashtbl.fold
    (fun _ tbl acc ->
      match Hashtbl.find_opt tbl label with
      | Some s -> acc + s.Store_backend.s_bytes ()
      | None -> acc)
    t.state 0

let release_pid t ~pid =
  Hashtbl.remove t.state pid;
  Hashtbl.remove t.windows pid

let entries t =
  List.sort
    (fun ((p1, l1), _) ((p2, l2), _) ->
      match compare (p1 : int) p2 with
      | 0 -> String.compare l1 l2
      | c -> c)
    (Hashtbl.fold
       (fun pid tbl acc ->
         Hashtbl.fold
           (fun label s acc ->
             ((pid, label), s.Store_backend.s_ranges ()) :: acc)
           tbl acc)
       t.state [])

(* --- persistence --------------------------------------------------------- *)

type persisted_window = {
  pw_pid : int;
  pw_ltlt : int;
  pw_nt_used : int;
  pw_labels : string list;
  pw_opener_seq : int;
  pw_opener_range : Range.t option;
}

type persisted = {
  ps_entries : ((int * string) * Range.t list) list;
  ps_windows : persisted_window list;
  ps_known_labels : string list;
  ps_probes : int;
}

(* Everything [observe]/[labels_of] depend on, in the deterministic
   orders the sorted accessors already guarantee: per-(pid,label) range
   sets, open windows (with their label sets and opener provenance, so
   an in-flight propagation window survives a snapshot), the label
   universe (a label can be known yet currently hold no ranges), and
   the probe counter so observability stays continuous across a
   restore. *)
let persist t =
  {
    ps_entries = entries t;
    ps_windows =
      List.sort
        (fun a b -> compare (a.pw_pid : int) b.pw_pid)
        (Hashtbl.fold
           (fun pid w acc ->
             {
               pw_pid = pid;
               pw_ltlt = w.ltlt;
               pw_nt_used = w.nt_used;
               pw_labels = Sset.elements w.labels;
               pw_opener_seq = w.opener_seq;
               pw_opener_range = w.opener_range;
             }
             :: acc)
           t.windows []);
    ps_known_labels = Sset.elements t.known_labels;
    ps_probes = t.probes;
  }

(* Rebuild into a freshly created sidecar (same policy and backend as
   the persisted one — the snapshot manifest carries both). *)
let restore t p =
  List.iter
    (fun ((pid, label), ranges) ->
      let s = set_for t ~pid ~label in
      List.iter s.Store_backend.s_add ranges)
    p.ps_entries;
  List.iter
    (fun pw ->
      Hashtbl.replace t.windows pw.pw_pid
        {
          ltlt = pw.pw_ltlt;
          nt_used = pw.pw_nt_used;
          labels = Sset.of_list pw.pw_labels;
          opener_seq = pw.pw_opener_seq;
          opener_range = pw.pw_opener_range;
        })
    p.ps_windows;
  t.known_labels <- Sset.of_list p.ps_known_labels;
  t.probes <- p.ps_probes

(* --- flow graphs -------------------------------------------------------- *)

module Graph = struct
  type node_kind = N_source of string | N_load | N_store | N_sink of string

  type node = {
    id : int;
    kind : node_kind;
    pid : int;
    range : Range.t;
    seq : int;
  }

  type edge = { e_from : int; e_to : int; e_seq : int }

  type t = {
    mutable nodes_rev : node list;
    mutable node_count : int;
    index : (node_kind * int * int * int * int, node) Hashtbl.t;
    mutable edges_rev : edge list;
    mutable edge_count : int;
    eindex : (int * int * int, unit) Hashtbl.t;
  }

  let create () =
    {
      nodes_rev = [];
      node_count = 0;
      index = Hashtbl.create 32;
      edges_rev = [];
      edge_count = 0;
      eindex = Hashtbl.create 32;
    }

  let node t ~kind ~pid ~range ~seq =
    let key = (kind, pid, Range.lo range, Range.hi range, seq) in
    match Hashtbl.find_opt t.index key with
    | Some n -> n
    | None ->
        let n = { id = t.node_count; kind; pid; range; seq } in
        t.node_count <- t.node_count + 1;
        t.nodes_rev <- n :: t.nodes_rev;
        Hashtbl.add t.index key n;
        n

  let edge t ~src ~dst ~seq =
    let key = (src.id, dst.id, seq) in
    if not (Hashtbl.mem t.eindex key) then begin
      Hashtbl.add t.eindex key ();
      t.edge_count <- t.edge_count + 1;
      t.edges_rev <- { e_from = src.id; e_to = dst.id; e_seq = seq } :: t.edges_rev
    end

  let nodes t = List.rev t.nodes_rev

  let edges t =
    List.sort
      (fun a b ->
        compare (a.e_from, a.e_to, a.e_seq) (b.e_from, b.e_to, b.e_seq))
      t.edges_rev

  let node_count t = t.node_count
  let edge_count t = t.edge_count

  let kind_label = function
    | N_source l -> "source " ^ l
    | N_load -> "load"
    | N_store -> "store"
    | N_sink k -> "sink " ^ k

  let dot_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let dot_shape = function
    | N_source _ -> "shape=ellipse, style=filled, fillcolor=lightblue"
    | N_load -> "shape=box"
    | N_store -> "shape=box, style=rounded"
    | N_sink _ -> "shape=doubleoctagon, style=filled, fillcolor=lightsalmon"

  let to_dot ?(name = "pift_flow") t =
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "digraph \"%s\" {\n" (dot_escape name);
    Buffer.add_string buf "  rankdir=LR;\n";
    Buffer.add_string buf "  node [fontname=\"monospace\"];\n";
    List.iter
      (fun n ->
        Printf.bprintf buf "  n%d [%s, label=\"%s\\n%s @%d\"];\n" n.id
          (dot_shape n.kind)
          (dot_escape (kind_label n.kind))
          (dot_escape (Range.to_string n.range))
          n.seq)
      (nodes t);
    List.iter
      (fun e ->
        Printf.bprintf buf "  n%d -> n%d [label=\"@%d\"];\n" e.e_from e.e_to
          e.e_seq)
      (edges t);
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  type sink_summary = {
    ss_kind : string;
    ss_seq : int;
    ss_origins : string list;
    ss_nodes : int;
  }

  (* Perfetto wants per-tid timestamps non-decreasing, so events are
     sorted by (ts, rank): node slices open (rank 0) before any flow
     event at the same timestamp (rank 1) and close after (rank 2) —
     flow starts/finishes then always fall inside the zero-width slice
     they bind to. *)
  let flow_json ?(run = "pift") ?(sinks = []) t =
    let meta name value =
      Json.Obj
        [
          ("name", Json.String name);
          ("ph", Json.String "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String value) ]);
        ]
    in
    let items = ref [] in
    let gen = ref 0 in
    let push ts rank j =
      items := (ts, rank, !gen, j) :: !items;
      incr gen
    in
    let base ~name ~ph ~ts rest =
      Json.Obj
        ([
           ("name", Json.String name);
           ("ph", Json.String ph);
           ("pid", Json.Int 1);
           ("tid", Json.Int 0);
           ("ts", Json.Float (float_of_int ts));
         ]
        @ rest)
    in
    List.iter
      (fun n ->
        let name = kind_label n.kind in
        let args =
          [
            ( "args",
              Json.Obj
                [
                  ("range", Json.String (Range.to_string n.range));
                  ("seq", Json.Int n.seq);
                  ("node", Json.Int n.id);
                ] );
          ]
        in
        push n.seq 0 (base ~name ~ph:"B" ~ts:n.seq args);
        push n.seq 2 (base ~name ~ph:"E" ~ts:n.seq []))
      (List.sort (fun a b -> compare (a.seq, a.id) (b.seq, b.id)) (nodes t));
    let by_id = Hashtbl.create 32 in
    List.iter (fun n -> Hashtbl.replace by_id n.id n) (nodes t);
    List.iteri
      (fun i e ->
        let seq_of id = (Hashtbl.find by_id id).seq in
        let flow ph ts extra =
          base ~name:"flow" ~ph ~ts
            ([ ("cat", Json.String "flow"); ("id", Json.Int i) ] @ extra)
        in
        push (seq_of e.e_from) 1 (flow "s" (seq_of e.e_from) []);
        push (seq_of e.e_to) 1
          (flow "f" (seq_of e.e_to) [ ("bp", Json.String "e") ]))
      (edges t);
    let sorted =
      List.map
        (fun (_, _, _, j) -> j)
        (List.sort
           (fun (ts1, r1, g1, _) (ts2, r2, g2, _) ->
             compare (ts1, r1, g1) (ts2, r2, g2))
           !items)
    in
    let sink_json ss =
      Json.Obj
        [
          ("kind", Json.String ss.ss_kind);
          ("seq", Json.Int ss.ss_seq);
          ("origins", Json.List (List.map (fun l -> Json.String l) ss.ss_origins));
          ("path_nodes", Json.Int ss.ss_nodes);
        ]
    in
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            (meta "process_name" run :: meta "thread_name" "provenance flow"
            :: sorted) );
        ("displayTimeUnit", Json.String "ms");
        ( "pift_flow_graph",
          Json.Obj
            [
              ("run", Json.String run);
              ("nodes", Json.Int (node_count t));
              ("edges", Json.Int (edge_count t));
              ("sinks", Json.List (List.map sink_json sinks));
            ] );
      ]
end
