module Range = Pift_util.Range

type backend = Functional | Flat | Hybrid | Bytemap

let backend_to_string = function
  | Functional -> "functional"
  | Flat -> "flat"
  | Hybrid -> "hybrid"
  | Bytemap -> "bytemap"

let backend_of_string = function
  | "functional" -> Some Functional
  | "flat" -> Some Flat
  | "hybrid" -> Some Hybrid
  | "bytemap" -> Some Bytemap
  | _ -> None

(* Order matters to the differential suite: the bytemap oracle is last. *)
let all_backends = [ Functional; Flat; Hybrid; Bytemap ]

type set = {
  s_add : Range.t -> unit;
  s_remove : Range.t -> unit;
  s_overlaps : Range.t -> bool;
  s_bytes : unit -> int;
  s_count : unit -> int;
  s_ranges : unit -> Range.t list;
}

let functional () =
  let s = ref Range_set.empty in
  {
    s_add = (fun r -> s := Range_set.add !s r);
    s_remove = (fun r -> s := Range_set.remove !s r);
    s_overlaps = (fun r -> Range_set.mem_overlap !s r);
    s_bytes = (fun () -> Range_set.total_bytes !s);
    s_count = (fun () -> Range_set.cardinal !s);
    s_ranges = (fun () -> Range_set.ranges !s);
  }

let flat () =
  let s = Store_flat.create () in
  {
    s_add = Store_flat.add s;
    s_remove = Store_flat.remove s;
    s_overlaps = Store_flat.mem_overlap s;
    s_bytes = (fun () -> Store_flat.total_bytes s);
    s_count = (fun () -> Store_flat.cardinal s);
    s_ranges = (fun () -> Store_flat.ranges s);
  }

let hybrid () =
  let s = Store_hybrid.create () in
  {
    s_add = Store_hybrid.add s;
    s_remove = Store_hybrid.remove s;
    s_overlaps = Store_hybrid.mem_overlap s;
    s_bytes = (fun () -> Store_hybrid.total_bytes s);
    s_count = (fun () -> Store_hybrid.cardinal s);
    s_ranges = (fun () -> Store_hybrid.ranges s);
  }

let bytemap () =
  let s = Store_bytemap.create () in
  {
    s_add = Store_bytemap.add s;
    s_remove = Store_bytemap.remove s;
    s_overlaps = Store_bytemap.mem_overlap s;
    s_bytes = (fun () -> Store_bytemap.total_bytes s);
    s_count = (fun () -> Store_bytemap.cardinal s);
    s_ranges = (fun () -> Store_bytemap.ranges s);
  }

let make = function
  | Functional -> functional ()
  | Flat -> flat ()
  | Hybrid -> hybrid ()
  | Bytemap -> bytemap ()
