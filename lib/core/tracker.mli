(** The PIFT taint-propagation heuristic — Algorithm 1 of the paper.

    The tracker consumes the instruction-event stream.  On a load whose
    address range overlaps tainted state it opens (or restarts) a
    *tainting window* of [ni] instructions; the target ranges of the next
    up-to-[nt] stores inside the window are tainted; stores outside the
    window (or beyond the propagation cap) are optionally *untainted*.
    Windows are per-process, measured on the per-process instruction
    counter.

    Sources register tainted ranges with {!taint_source} (the PIFT
    Manager / Native / Module path of Fig. 3); sinks query with
    {!is_tainted}. *)

type t

val create :
  ?policy:Policy.t -> ?store:Store.t -> ?metrics:Pift_obs.Registry.t ->
  ?flight:Pift_obs.Flight.t -> ?prov:Provenance.t ->
  ?telemetry:Pift_obs.Telemetry.t -> ?profile:Pift_obs.Profile.t -> unit -> t
(** [policy] defaults to {!Policy.default}; [store] to
    [Store.create ()] (the [Functional] backend — pass
    [Store.create ~backend ()] to pick another; all exact backends give
    identical verdicts and stats).  When [metrics] is given, the tracker
    registers
    [pift_tracker_*] counters and gauges (events, lookups, tainted loads,
    taint/untaint ops, tainted-bytes and range-count gauges, and a
    per-pid [pift_tracker_window_opens_total] family) and keeps them in
    lock-step with {!stats}; without it the observer path is a no-op.

    When [flight] is given, the tracker also stamps the flight recorder:
    an instant per {!taint_source} (["source"]) and per {!is_tainted}
    query (["sink-check"]), counter samples ["tainted_bytes"]/["ranges"]
    whenever the peaks update, and ["window_used"] per in-window store
    taint — the fine-grained counter tracks behind [--trace-out] on
    single replays.

    When [prov] is given (create it with the same policy and backend),
    the tracker drives it as an origin-set sidecar: sources land with
    their kind as the label, every observed event and [untaint_range]
    is mirrored, and {!origins_of} answers from it.  The sidecar's
    per-label union equals the tracker's own taint state at every step,
    so verdicts, stats and stdout are unchanged by threading it.

    When [telemetry] is given, the tracker registers the
    ["tainted_bytes"]/["ranges"]/["window_used"] snapshot sources
    (replacing any previous tracker's bindings on a shared per-slot
    instance) and bumps it once per {!observe}d event, so the snapshot
    cadence follows real event flow.  When [profile] is given, every
    event dispatch is attributed to the ["tracker"] region with store
    operations nested as ["store"].  Both are no-ops when absent, and
    neither ever changes verdicts, stats, or stdout. *)

val policy : t -> Policy.t

val taint_source : ?kind:string -> t -> pid:int -> Pift_util.Range.t -> unit
(** Software-level registration at a source: taint a fresh range.
    [kind] (default ["source"]) is the origin label recorded by the
    provenance sidecar, ignored without one. *)

val untaint_range : t -> pid:int -> Pift_util.Range.t -> unit
(** Software-level removal (e.g. buffer freed and cleared). *)

val release_pid : t -> pid:int -> unit
(** Tenant eviction: drop the pid's window, its store state and (when
    present) its provenance state, then refresh the observability
    gauges/series so occupancy returns to the remaining tenants'
    baseline.  A released pid starts clean if seen again.  Peak stats
    ([max_tainted_bytes]/[max_ranges]) keep their high-water marks. *)

val current_tainted_bytes : t -> int
(** Live store occupancy in bytes (not the peak) — the engine's
    per-shard occupancy gauge reads this around every op/eviction. *)

val current_ranges : t -> int
(** Live distinct-range count (not the peak). *)

val origins_of : t -> pid:int -> Pift_util.Range.t -> string list
(** Source kinds whose data overlaps the range (sorted); [[]] without a
    provenance sidecar. *)

val provenance : t -> Provenance.t option

val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool
(** Software-level query at a sink. *)

val observe : t -> Pift_trace.Event.t -> unit
(** Feed one instruction event (the hardware fast path). *)

val tainted_ranges : t -> pid:int -> Pift_util.Range.t list

type stats = {
  taint_ops : int;  (** store ranges tainted by propagation *)
  untaint_ops : int;  (** store ranges actually untainted *)
  lookups : int;  (** load-time taint queries *)
  tainted_loads : int;  (** queries that hit and opened a window *)
  max_tainted_bytes : int;
  max_ranges : int;
  events : int;
}

val stats : t -> stats

val tainted_bytes_series : t -> Pift_util.Series.t
(** Tainted-bytes-over-time samples (paper Fig. 15); time is the global
    instruction sequence number. *)

val ops_series : t -> Pift_util.Series.t
(** Cumulative tainting+untainting operations over time (Fig. 16). *)

(** {1 Persistence}

    Structural snapshot for the service durability layer
    ({!Pift_service.Snapshot}): the full Algorithm 1 state — stats
    (including peaks), clock, per-pid windows, store intervals, and the
    provenance sidecar when present — as plain data. *)

type persisted = {
  p_stats : stats;
  p_last_time : int;
  p_windows : (int * int * int) list;
      (** (pid, LTLT, NT used), sorted by pid; LTLT can be the -inf
          sentinel, so it needs signed coding *)
  p_store : (int * Pift_util.Range.t list) list;  (** {!Store.t.dump} *)
  p_prov : Provenance.persisted option;
}

val persist : t -> persisted
(** Deterministic: identical tracker states persist identically,
    whatever backend or Hashtbl order.  Raises [Failure] on an
    {!Store.of_storage}-backed tracker (lossy range cache). *)

val restore : t -> persisted -> unit
(** Rebuild persisted state into a freshly created tracker with the
    same policy, store backend and provenance mode (the snapshot
    manifest records all three).  Restored ranges bypass
    [taint_source], so stats and the sidecar keep their persisted
    values; gauges and the Fig. 15 series are synced once at the end.
    After [restore t p] the tracker's observable behaviour — verdicts,
    origin sets, stats, future window decisions — is identical to the
    persisted tracker's. *)
