(** Hardware taint-storage model: the on-chip cache of tainted ranges of
    the paper's §3.3 (Figs. 5–6).

    Each entry holds a process ID, start and end addresses, and a valid
    bit (12 bytes per entry, so a 32 KiB memory holds ~2730 entries).
    Lookup is a parallel match in hardware; we model occupancy, hits,
    misses, and the two overflow strategies the paper discusses: LRU
    eviction to a secondary store in main memory, or simply dropping the
    entry (cheaper, but may lose sensitive flows → false negatives).

    A fixed-granularity variant ({!create} with [granularity = Some r])
    taints whole [2^r]-byte blocks instead of arbitrary ranges — smaller
    entries and simpler compare logic, at the price of overtainting
    (§3.3's alternative design). *)

type eviction =
  | Lru_writeback  (** evict least-recently-used to secondary storage *)
  | Drop  (** discard — no performance cost, possible false negatives *)

type t

val create :
  ?entries:int -> ?eviction:eviction -> ?granularity:int option ->
  ?backend:Store_backend.backend -> ?metrics:Pift_obs.Registry.t ->
  unit -> t
(** [entries] defaults to 2730 (32 KiB of 12-byte entries).
    [granularity] is [None] for arbitrary ranges, or [Some r] for
    [2^r]-byte block tagging.  [backend] (default [Functional]) selects
    the {!Store_backend} representation of the per-process secondary
    store in main memory; all backends are semantically identical, so
    hit/miss behaviour never depends on the choice.  With [metrics],
    [pift_storage_*] counters (lookups, primary/secondary hits,
    insertions, evictions, drops, writebacks) and an occupancy gauge
    mirror {!stats} live. *)

val insert : t -> pid:int -> Pift_util.Range.t -> unit
val remove : t -> pid:int -> Pift_util.Range.t -> unit

val lookup : t -> pid:int -> Pift_util.Range.t -> bool
(** Parallel range-overlap match; under [Lru_writeback] a primary miss
    also searches the secondary store (counted as a slow lookup) and
    promotes a hit back into the cache. *)

val context_switch : t -> unit
(** Write all entries back to secondary storage (the paper's alternative
    that frees the PID field; modelled for its traffic statistics). *)

val release_pid : t -> pid:int -> unit
(** Tenant eviction: invalidate every primary entry of [pid] (occupancy
    drops accordingly) and discard its secondary set.  Unlike
    {!context_switch} nothing is written back — the state is gone, and a
    re-registered pid starts clean. *)

val occupancy : t -> int
val tainted_bytes : t -> int
val range_count : t -> int
val ranges : t -> pid:int -> Pift_util.Range.t list

type stats = {
  lookups : int;
  hits : int;  (** primary-cache hits *)
  secondary_hits : int;  (** slow-path hits (Lru_writeback only) *)
  insertions : int;
  evictions : int;
  drops : int;  (** entries lost under [Drop] *)
  writebacks : int;
  max_occupancy : int;
}

val stats : t -> stats
