module Range = Pift_util.Range
module Counter = Pift_obs.Metric.Counter
module Gauge = Pift_obs.Metric.Gauge

type eviction = Lru_writeback | Drop

type meters = {
  m_lookups : Counter.t;
  m_hits : Counter.t;
  m_secondary_hits : Counter.t;
  m_insertions : Counter.t;
  m_evictions : Counter.t;
  m_drops : Counter.t;
  m_writebacks : Counter.t;
  m_occupancy : Gauge.t;
}

let meters_of registry =
  let c help name = Pift_obs.Registry.counter registry ~help name in
  {
    m_lookups = c "range-cache lookups" "pift_storage_lookups_total";
    m_hits = c "primary (on-chip) hits" "pift_storage_primary_hits_total";
    m_secondary_hits =
      c "secondary (main-memory) hits after a primary miss"
        "pift_storage_secondary_hits_total";
    m_insertions = c "range-cache insertions" "pift_storage_insertions_total";
    m_evictions = c "LRU evictions" "pift_storage_evictions_total";
    m_drops = c "insertions dropped when full" "pift_storage_drops_total";
    m_writebacks =
      c "entries written back to secondary storage"
        "pift_storage_writebacks_total";
    m_occupancy =
      Pift_obs.Registry.gauge registry ~help:"valid primary entries"
        "pift_storage_occupancy";
  }

type slot = {
  mutable pid : int;
  mutable lo : int;
  mutable hi : int;
  mutable valid : bool;
  mutable stamp : int;
}

type stats = {
  lookups : int;
  hits : int;
  secondary_hits : int;
  insertions : int;
  evictions : int;
  drops : int;
  writebacks : int;
  max_occupancy : int;
}

type t = {
  slots : slot array;
  eviction : eviction;
  granularity : int option;
  backend : Store_backend.backend;
  (* Secondary storage in main memory, per process. *)
  secondary : (int, Store_backend.set) Hashtbl.t;
  mutable clock : int;
  mutable occupancy : int;
  mutable lookups : int;
  mutable hits : int;
  mutable secondary_hits : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable drops : int;
  mutable writebacks : int;
  mutable max_occupancy : int;
  meters : meters option;
}

let meter t f = match t.meters with None -> () | Some m -> f m

let set_occupancy t v =
  t.occupancy <- v;
  meter t (fun m -> Gauge.set m.m_occupancy v)

let create ?(entries = 2730) ?(eviction = Lru_writeback)
    ?(granularity = None) ?(backend = Store_backend.Functional) ?metrics () =
  if entries <= 0 then invalid_arg "Storage.create: entries must be positive";
  (match granularity with
  | Some r when r < 0 || r > 20 ->
      invalid_arg "Storage.create: granularity out of range"
  | Some _ | None -> ());
  {
    slots =
      Array.init entries (fun _ ->
          { pid = 0; lo = 0; hi = 0; valid = false; stamp = 0 });
    eviction;
    granularity;
    backend;
    secondary = Hashtbl.create 4;
    clock = 0;
    occupancy = 0;
    lookups = 0;
    hits = 0;
    secondary_hits = 0;
    insertions = 0;
    evictions = 0;
    drops = 0;
    writebacks = 0;
    max_occupancy = 0;
    meters = Option.map meters_of metrics;
  }

let align t r =
  match t.granularity with
  | None -> r
  | Some g ->
      let block = 1 lsl g in
      let lo = Range.lo r / block * block in
      let hi = ((Range.hi r / block) + 1) * block - 1 in
      Range.make lo hi

let secondary_set t pid =
  match Hashtbl.find_opt t.secondary pid with
  | Some s -> s
  | None ->
      let s = Store_backend.make t.backend in
      Hashtbl.add t.secondary pid s;
      s

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Find a free slot, evicting if necessary.  Returns [None] when the
   entry had to be dropped. *)
let free_slot t =
  let free = ref None in
  Array.iter
    (fun s -> if (not s.valid) && !free = None then free := Some s)
    t.slots;
  match !free with
  | Some s -> Some s
  | None -> (
      match t.eviction with
      | Drop ->
          t.drops <- t.drops + 1;
          meter t (fun m -> Counter.incr m.m_drops);
          None
      | Lru_writeback ->
          let victim =
            Array.fold_left
              (fun acc s ->
                match acc with
                | None -> Some s
                | Some best -> if s.stamp < best.stamp then Some s else acc)
              None t.slots
          in
          let s = Option.get victim in
          let set = secondary_set t s.pid in
          set.Store_backend.s_add (Range.make s.lo s.hi);
          t.evictions <- t.evictions + 1;
          t.writebacks <- t.writebacks + 1;
          meter t (fun m ->
              Counter.incr m.m_evictions;
              Counter.incr m.m_writebacks);
          s.valid <- false;
          set_occupancy t (t.occupancy - 1);
          Some s)

let fill slot ~pid ~lo ~hi ~stamp =
  slot.pid <- pid;
  slot.lo <- lo;
  slot.hi <- hi;
  slot.stamp <- stamp;
  slot.valid <- true

let insert t ~pid r =
  let r = align t r in
  t.insertions <- t.insertions + 1;
  meter t (fun m -> Counter.incr m.m_insertions);
  (* Merge with an existing overlapping-or-adjacent entry when possible
     (the range-cache update of Tiwari et al. [17]); otherwise allocate. *)
  let merged = ref false in
  Array.iter
    (fun s ->
      if
        (not !merged) && s.valid && s.pid = pid
        &&
        let e = Range.make s.lo s.hi in
        Range.overlaps e r || Range.adjacent e r
      then begin
        s.lo <- min s.lo (Range.lo r);
        s.hi <- max s.hi (Range.hi r);
        s.stamp <- tick t;
        merged := true
      end)
    t.slots;
  if not !merged then
    match free_slot t with
    | None -> ()
    | Some slot ->
        fill slot ~pid ~lo:(Range.lo r) ~hi:(Range.hi r) ~stamp:(tick t);
        set_occupancy t (t.occupancy + 1);
        if t.occupancy > t.max_occupancy then t.max_occupancy <- t.occupancy

let remove t ~pid r =
  let r = align t r in
  (* Trim every overlapping primary entry; a middle cut leaves two pieces,
     the second of which needs a fresh slot. *)
  let pending = ref [] in
  Array.iter
    (fun s ->
      if s.valid && s.pid = pid && Range.overlaps (Range.make s.lo s.hi) r
      then begin
        let pieces = Range.subtract (Range.make s.lo s.hi) r in
        match pieces with
        | [] ->
            s.valid <- false;
            set_occupancy t (t.occupancy - 1)
        | [ p ] ->
            s.lo <- Range.lo p;
            s.hi <- Range.hi p
        | p1 :: rest ->
            s.lo <- Range.lo p1;
            s.hi <- Range.hi p1;
            pending := rest @ !pending
      end)
    t.slots;
  List.iter (fun p -> insert t ~pid p) !pending;
  (* Secondary storage is exact. *)
  match Hashtbl.find_opt t.secondary pid with
  | Some set -> set.Store_backend.s_remove r
  | None -> ()

let primary_lookup t ~pid r =
  let hit = ref false in
  Array.iter
    (fun s ->
      if s.valid && s.pid = pid && Range.overlaps (Range.make s.lo s.hi) r
      then begin
        s.stamp <- tick t;
        hit := true
      end)
    t.slots;
  !hit

let lookup t ~pid r =
  let r = align t r in
  t.lookups <- t.lookups + 1;
  meter t (fun m -> Counter.incr m.m_lookups);
  if primary_lookup t ~pid r then begin
    t.hits <- t.hits + 1;
    meter t (fun m -> Counter.incr m.m_hits);
    true
  end
  else
    match t.eviction with
    | Drop -> false
    | Lru_writeback -> (
        match Hashtbl.find_opt t.secondary pid with
        | Some set when set.Store_backend.s_overlaps r ->
            t.secondary_hits <- t.secondary_hits + 1;
            meter t (fun m -> Counter.incr m.m_secondary_hits);
            (* Promote: hardware refetches the matching range. *)
            let promoted =
              List.find_opt
                (fun p -> Range.overlaps p r)
                (set.Store_backend.s_ranges ())
            in
            (match promoted with
            | Some p ->
                set.Store_backend.s_remove p;
                insert t ~pid p
            | None -> ());
            true
        | Some _ | None -> false)

let release_pid t ~pid =
  (* Tenant eviction: invalidate the pid's primary entries (keeping the
     occupancy gauge honest) and drop its secondary set outright — no
     writeback, the state is being discarded, not displaced. *)
  Array.iter
    (fun s ->
      if s.valid && s.pid = pid then begin
        s.valid <- false;
        set_occupancy t (t.occupancy - 1)
      end)
    t.slots;
  Hashtbl.remove t.secondary pid

let context_switch t =
  Array.iter
    (fun s ->
      if s.valid then begin
        let set = secondary_set t s.pid in
        set.Store_backend.s_add (Range.make s.lo s.hi);
        t.writebacks <- t.writebacks + 1;
        meter t (fun m -> Counter.incr m.m_writebacks);
        s.valid <- false
      end)
    t.slots;
  set_occupancy t 0

let occupancy t = t.occupancy

(* Exact union across (possibly overlapping) primary entries plus the
   secondary store. *)
let union_set t =
  let set = ref Range_set.empty in
  Array.iter
    (fun s ->
      if s.valid then set := Range_set.add !set (Range.make s.lo s.hi))
    t.slots;
  Hashtbl.iter
    (fun _ sec ->
      List.iter
        (fun r -> set := Range_set.add !set r)
        (sec.Store_backend.s_ranges ()))
    t.secondary;
  !set

let tainted_bytes t = Range_set.total_bytes (union_set t)
let range_count t = Range_set.cardinal (union_set t)

let ranges t ~pid =
  let set = ref Range_set.empty in
  Array.iter
    (fun s ->
      if s.valid && s.pid = pid then
        set := Range_set.add !set (Range.make s.lo s.hi))
    t.slots;
  (match Hashtbl.find_opt t.secondary pid with
  | Some sec ->
      List.iter
        (fun r -> set := Range_set.add !set r)
        (sec.Store_backend.s_ranges ())
  | None -> ());
  Range_set.ranges !set

let stats t =
  {
    lookups = t.lookups;
    hits = t.hits;
    secondary_hits = t.secondary_hits;
    insertions = t.insertions;
    evictions = t.evictions;
    drops = t.drops;
    writebacks = t.writebacks;
    max_occupancy = t.max_occupancy;
  }
