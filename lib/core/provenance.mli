(** Provenance-carrying variant of Algorithm 1: taint tags identify the
    source that produced them.

    The paper's related work (Raksha, Flexitaint) uses multi-bit tags to
    carry policy; the natural PIFT extension is to carry *source
    identity*, so a sink check answers not just "is this tainted" but
    "this buffer contains data derived from the IMEI and the phone
    number".  The window mechanics are identical to {!Tracker}: a load
    hitting any tainted range opens the window and records the union of
    the labels it touched; the up-to-NT in-window stores inherit that
    label set; out-of-window stores untaint all labels.

    State is one taint set per (process, label) — backed by any
    {!Store_backend} — so per-label cost matches the plain tracker and
    the label count only multiplies the source-registration footprint.
    The sets are indexed pid-first (pid -> label -> set), so the scan
    paths ([hit_labels], untainting) cost one probe per label of the
    *probed* process: cold processes held by a long-lived engine add
    nothing to another tenant's per-event cost.

    {b Invariant} (the basis of every origin-set guarantee downstream):
    the union of the per-label sets equals the plain {!Tracker} state at
    every point of the replay.  A load opens the provenance window iff
    any label set overlaps, which by the union is exactly when the
    tracker's set overlaps; propagation and untainting apply to every
    window label.  Hence a tracker-flagged sink always has a non-empty
    origin set, and vice versa. *)

type t

val create :
  ?policy:Policy.t -> ?backend:Store_backend.backend -> unit -> t
(** [backend] (default [Functional]) picks the per-label taint-set
    representation; exact backends give identical label sets. *)

val policy : t -> Policy.t

val taint_source : t -> pid:int -> label:string -> Pift_util.Range.t -> unit

val untaint_range : t -> pid:int -> Pift_util.Range.t -> unit
(** Software-level removal, mirroring {!Tracker.untaint_range}: the
    range is dropped from every label of the process. *)

val release_pid : t -> pid:int -> unit
(** Tenant eviction: drop every label set and the window of [pid].  The
    pid can be re-registered later and starts from a clean slate. *)

val probes : t -> int
(** Cumulative count of per-label set visits on the scan paths
    ([hit_labels] / untainting).  Regression handle for the per-pid
    index: with N cold pids resident, probing one pid must cost that
    pid's label count, not the table size. *)

val observe : t -> Pift_trace.Event.t -> unit

val labels_of : t -> pid:int -> Pift_util.Range.t -> string list
(** Labels whose taint overlaps the range, sorted. *)

val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool

val all_labels : t -> string list
(** Every label ever registered, sorted. *)

val tainted_bytes : t -> label:string -> int

val entries : t -> ((int * string) * Pift_util.Range.t list) list
(** Full state dump for emission: ((pid, label), ranges), sorted by
    (pid, label) — the only sanctioned way to iterate the state for
    output, so provenance emissions are byte-identical across runs,
    backends and [--jobs] counts. *)

(** {1 Persistence}

    Structural snapshot of the sidecar for the service durability layer
    ({!Pift_service.Snapshot}): everything [observe]/[labels_of] depend
    on, in deterministic (sorted) order, as plain data the snapshot
    format can encode. *)

type persisted_window = {
  pw_pid : int;
  pw_ltlt : int;
  pw_nt_used : int;
  pw_labels : string list;  (** sorted *)
  pw_opener_seq : int;
  pw_opener_range : Pift_util.Range.t option;
}

type persisted = {
  ps_entries : ((int * string) * Pift_util.Range.t list) list;
      (** as {!entries}: sorted by (pid, label) *)
  ps_windows : persisted_window list;  (** sorted by pid *)
  ps_known_labels : string list;  (** sorted; may exceed [ps_entries]'
      labels — a label stays known after its ranges untaint *)
  ps_probes : int;
}

val persist : t -> persisted

val restore : t -> persisted -> unit
(** Rebuild persisted state into a freshly created sidecar.  The target
    must have been created with the same policy and backend as the
    persisted instance (the snapshot manifest records both); after
    [restore t p], [persist t] equals [p] up to empty-set elision. *)

(** {1 Propagation hook}

    The graph builder ({!Pift_eval.Explain}) needs, per in-window store,
    the load that opened the window and the label set it carried. *)

type propagation = {
  p_pid : int;
  p_store_seq : int;  (** global sequence of the tainted store *)
  p_stored : Pift_util.Range.t;  (** range the store tainted *)
  p_load_seq : int;  (** the tainted load that opened the window *)
  p_loaded : Pift_util.Range.t;  (** range that load read *)
  p_labels : string list;  (** window label set, sorted *)
}

val set_on_propagate : t -> (propagation -> unit) -> unit
(** Invoked once per in-window store whose window was opened by a
    tainted load (i.e. once per taint propagation).  Off by default;
    the hot path pays one option check when unset. *)

(** {1 Flow graphs}

    The shared graph representation behind [pift why], [--prov-out] and
    the CI-validated exports: nodes are source registrations, loads,
    stores and sink checks; edges are propagations in dataflow order,
    stamped with the global sequence number at which the data moved.
    Nodes are cached by (kind, pid, range, seq), so walks from several
    sinks share their common sub-chains and the result is a DAG. *)
module Graph : sig
  type node_kind =
    | N_source of string  (** source registration, carrying its label *)
    | N_load  (** tainted load that opened a window *)
    | N_store  (** in-window store that propagated taint *)
    | N_sink of string  (** flagged sink check, carrying its kind *)

  type node = {
    id : int;  (** dense, in creation order (deterministic) *)
    kind : node_kind;
    pid : int;
    range : Pift_util.Range.t;
    seq : int;  (** global sequence number of the event/marker *)
  }

  type edge = { e_from : int; e_to : int; e_seq : int }

  type t

  val create : unit -> t

  val node :
    t -> kind:node_kind -> pid:int -> range:Pift_util.Range.t -> seq:int ->
    node
  (** Cached: an existing node with the same (kind, pid, range, seq) is
      returned instead of a duplicate. *)

  val edge : t -> src:node -> dst:node -> seq:int -> unit
  (** Directed dataflow edge; duplicates are dropped. *)

  val nodes : t -> node list
  (** In creation order (ascending [id]). *)

  val edges : t -> edge list
  (** Sorted by (from, to, seq). *)

  val node_count : t -> int
  val edge_count : t -> int

  val kind_label : node_kind -> string
  (** ["source IMEI"], ["load"], ["store"], ["sink http"]. *)

  val to_dot : ?name:string -> t -> string
  (** Graphviz DOT rendering; nodes sorted by id, edges by (from, to,
      seq), so the output is byte-identical for identical graphs. *)

  type sink_summary = {
    ss_kind : string;
    ss_seq : int;
    ss_origins : string list;  (** sorted *)
    ss_nodes : int;  (** longest origin path, in nodes *)
  }
  (** Per-sink digest carried in the JSON export so [pift report] can
      print a flow summary without re-deriving the walks. *)

  val flow_json : ?run:string -> ?sinks:sink_summary list -> t -> Pift_obs.Json.t
  (** Perfetto-loadable export: a ["traceEvents"] array with one
      zero-width slice per node at [ts = seq] µs plus one [s]/[f] flow
      event pair per edge, and a ["pift_flow_graph"] object ([run],
      node/edge counts, [sinks]) that both summarizes the graph and
      serves as the {!Pift_obs.Sink.classify} sniffing key. *)
end
