(* A deliberately small domain pool: one mutex, two condition variables,
   and an epoch counter.  Parallel regions are serialised at the pool —
   [map_slots] publishes one job, every worker (caller included) pulls
   chunks off an atomic cursor, and the caller joins before returning,
   so at most one job is ever in flight and workers can keep plain
   (unsynchronised) per-slot state between jobs. *)

type job = worker:int -> unit

type t = {
  jobs : int;
  mu : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable pending : job option;
  mutable epoch : int;  (* bumped per published job *)
  mutable running : int;  (* workers still inside the current job *)
  mutable failed : exn option;  (* first exception, re-raised by caller *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  rings : Pift_obs.Flight.t array;
      (* flight-recorder ring per worker slot; [||] = tracing off *)
  profiles : Pift_obs.Profile.t array;
      (* overhead profiler per worker slot; [||] = profiling off *)
}

let default_jobs () = Domain.recommended_domain_count ()

let record_failure t exn =
  Mutex.lock t.mu;
  if t.failed = None then t.failed <- Some exn;
  Mutex.unlock t.mu

let worker_loop t ~worker =
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mu;
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.work_ready t.mu
    done;
    if t.stop then begin
      Mutex.unlock t.mu;
      continue_ := false
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.pending in
      Mutex.unlock t.mu;
      (try job ~worker with exn -> record_failure t exn);
      Mutex.lock t.mu;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mu
    end
  done

let create ?jobs ?(rings = [||]) ?(profiles = [||]) () =
  let jobs =
    match jobs with None -> default_jobs () | Some j -> max 1 j
  in
  let t =
    {
      rings;
      profiles;
      jobs;
      mu = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      pending = None;
      epoch = 0;
      running = 0;
      failed = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs ?rings ?profiles f =
  let t = create ?jobs ?rings ?profiles () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Publish [job], run our share as worker 0, join the pool, re-raise the
   first failure. *)
let run_job t job =
  if t.stop then invalid_arg "Pool: used after shutdown";
  if t.jobs = 1 then begin
    t.failed <- None;
    (try job ~worker:0 with exn -> t.failed <- Some exn)
  end
  else begin
    Mutex.lock t.mu;
    t.failed <- None;
    t.pending <- Some job;
    t.running <- t.jobs - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    (try job ~worker:0 with exn -> record_failure t exn);
    Mutex.lock t.mu;
    while t.running > 0 do
      Condition.wait t.work_done t.mu
    done;
    t.pending <- None;
    Mutex.unlock t.mu
  end;
  match t.failed with
  | Some exn ->
      t.failed <- None;
      raise exn
  | None -> ()

let map_slots t ?(chunk = 1) ~f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk = max 1 chunk in
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    let job ~worker =
      let ring =
        if worker < Array.length t.rings then Some t.rings.(worker) else None
      in
      let profile =
        if worker < Array.length t.profiles then Some t.profiles.(worker)
        else None
      in
      let continue_ = ref true in
      while !continue_ do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue_ := false
        else begin
          (match ring with
          | Some r -> Pift_obs.Flight.begin_ r "chunk"
          | None -> ());
          (match profile with
          | Some p -> Pift_obs.Profile.enter p "pool"
          | None -> ());
          for i = start to min n (start + chunk) - 1 do
            out.(i) <- Some (f ~worker i xs.(i))
          done;
          (match profile with
          | Some p -> Pift_obs.Profile.leave p
          | None -> ());
          match ring with
          | Some r -> Pift_obs.Flight.end_ r "chunk"
          | None -> ()
        end
      done
    in
    run_job t job;
    Array.map
      (function Some v -> v | None -> assert false (* run_job raised *))
      out
  end

let map t ?chunk ~f xs = map_slots t ?chunk ~f:(fun ~worker:_ _ x -> f x) xs

let map_reduce t ?chunk ~map:f ~combine ~init xs =
  Array.fold_left combine init (map t ?chunk ~f xs)
