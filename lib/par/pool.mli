(** Fixed-size domain pool for embarrassingly parallel evaluation work.

    The pool spawns [jobs - 1] worker domains once at {!create}; the
    calling domain is worker 0 and always participates, so [jobs = 1]
    never spawns a domain and runs everything inline — the serial and
    parallel code paths are the same code.

    Work is distributed by chunked self-scheduling: workers pull chunk
    indices from an atomic counter, so an expensive item (a high-NI×NT
    grid cell, say) never stalls the others behind a static partition.
    Results are always slotted by input index, never by completion
    order — [map pool ~f xs] equals [Array.map f xs] element for
    element, whatever the schedule.  Determinism of the *result* is the
    caller's to keep: [f] must not mutate shared state, or must confine
    mutation to per-worker structures (see [map_slots] and
    [Pift_obs.Registry.merge]). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs] defaults to. *)

val create :
  ?jobs:int -> ?rings:Pift_obs.Flight.t array ->
  ?profiles:Pift_obs.Profile.t array -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}, clamped to
    at least 1).  The pool holds [jobs - 1] blocked domains until
    {!shutdown}.

    [?rings] attaches one flight-recorder ring per worker slot (index =
    slot); when present, [map_slots] stamps a ["chunk"] span around each
    claimed chunk on the claiming worker's ring, so a merged timeline
    shows the actual schedule.  [?profiles] likewise attaches one
    overhead profiler per slot; each claimed chunk runs inside a ["pool"]
    region on the claiming worker's profiler, so per-item regions (the
    replay/tracker/store stack) nest under pool scheduling in the folded
    stacks.  Slots beyond either array's length (and the default [[||]])
    record nothing. *)

val jobs : t -> int
(** Worker count, including the calling domain (slot 0). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool is unusable after. *)

val with_pool :
  ?jobs:int -> ?rings:Pift_obs.Flight.t array ->
  ?profiles:Pift_obs.Profile.t array -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exception). *)

val run_job : t -> (worker:int -> unit) -> unit
(** The raw primitive beneath [map_slots]: publish one job that every
    worker — the caller included, as slot 0 — runs {e exactly once},
    then join the pool and re-raise the first failure (after all
    workers have drained, so no worker is still inside the job when it
    propagates).  Unlike [map_slots] there is no work-stealing cursor:
    each slot gets exactly one call, which is what cooperating
    long-lived roles need (e.g. the service engine runs one producer on
    slot 0 and one shard consumer per remaining slot).  At most one job
    is ever in flight per pool; with [jobs = 1] the job runs inline on
    the caller. *)

val map_slots :
  t -> ?chunk:int -> f:(worker:int -> int -> 'a -> 'b) -> 'a array -> 'b array
(** The primitive: [f ~worker i x] computes the result for input index
    [i], on worker slot [worker] (in [0 .. jobs-1]).  The slot index
    lets callers keep per-worker accumulators (metrics registries,
    scratch buffers) without locking the hot path.  [chunk] is the
    number of consecutive indices claimed per scheduling step (default
    1 — right for coarse items like grid-cell replays).  Results land
    at their input index.  If any [f] raises, the first exception (in
    completion order) is re-raised in the caller after all workers have
    drained. *)

val map : t -> ?chunk:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_slots] without the bookkeeping: order-preserving parallel
    [Array.map]. *)

val map_reduce :
  t ->
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Parallel map, then a *sequential* left fold in input-index order —
    the fold order is fixed so non-commutative [combine]s still give
    deterministic results. *)
