(** Ingest front: turn recordings and trace files into tenant sources,
    interleave them deterministically, and feed the engine.

    A {!source} binds one trace stream to one engine pid.  Pids come
    from {!tenant_pid}, which places tenant [i] at the start of its own
    [pid_range] block so the engine's range partitioning spreads
    tenants round-robin across shards.  Events are remapped into the
    tenant's block preserving their offset from the recorded main pid,
    so forked child processes stay distinct. *)

type source = {
  src_name : string;
  src_pid : int;  (** pid the engine sees *)
  src_orig_pid : int;  (** pid recorded in the trace *)
  src_next : unit -> Pift_eval.Recorded.item option;
  src_close : unit -> unit;
}

val tenant_pid : ?pid_range:int -> int -> int
(** [(i + 1) * pid_range] (default [pid_range] matches
    {!Engine.create}): the engine pid for tenant index [i >= 0]. *)

val of_recorded : pid:int -> Pift_eval.Recorded.t -> source
(** In-memory recording as a source (no close needed). *)

val of_file : pid:int -> string -> source
(** Open [path] with {!Pift_eval.Trace_io.open_reader} — text or binary,
    streamed event-at-a-time, never materialised.  {!close} (or {!run})
    releases the channel. *)

val close : source -> unit

val to_engine_item : source -> Pift_eval.Recorded.item -> Engine.item
(** Remap one recorded item onto the source's engine pid. *)

val merge : source list -> Engine.stream
(** Deterministic interleave: always emit the head with the smallest
    [(seq, source index)] — ties on seq go to the earlier-listed
    source.  Per-source item order is preserved, so each tenant sees
    exactly its own stream in order; the cross-tenant schedule is fixed
    by the inputs alone, never by thread timing. *)

val run : Engine.t -> source list -> unit
(** Register each source's tenant (named after the trace), then
    {!Engine.run} the merged stream.  Sources are closed on the way
    out, also on failure. *)
