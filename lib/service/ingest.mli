(** Ingest front: turn recordings and trace files into tenant sources,
    interleave them deterministically, and feed the engine.

    A {!source} binds one trace stream to one engine pid.  Pids come
    from {!tenant_pid}, which places tenant [i] at the start of its own
    [pid_range] block so the engine's range partitioning spreads
    tenants round-robin across shards.  Events are remapped into the
    tenant's block preserving their offset from the recorded main pid,
    so forked child processes stay distinct. *)

type source = {
  src_name : string;
  src_path : string option;  (** trace file, [None] for in-memory *)
  src_pid : int;  (** pid the engine sees *)
  src_orig_pid : int;  (** pid recorded in the trace *)
  src_next : unit -> Pift_eval.Recorded.item option;
  src_close : unit -> unit;
  mutable src_emitted : int;  (** read via {!cursor} *)
}

val tenant_pid : ?pid_range:int -> int -> int
(** [(i + 1) * pid_range] (default [pid_range] matches
    {!Engine.create}): the engine pid for tenant index [i >= 0]. *)

val of_recorded : pid:int -> Pift_eval.Recorded.t -> source
(** In-memory recording as a source (no close needed). *)

val of_file : pid:int -> string -> source
(** Open [path] with {!Pift_eval.Trace_io.open_reader} — text or binary,
    streamed event-at-a-time, never materialised.  {!close} (or {!run})
    releases the channel. *)

val close : source -> unit

val to_engine_item : source -> Pift_eval.Recorded.item -> Engine.item
(** Remap one recorded item onto the source's engine pid. *)

val merge : source list -> Engine.stream
(** Deterministic interleave: always emit the head with the smallest
    [(seq, source index)] — ties on seq go to the earlier-listed
    source.  Per-source item order is preserved, so each tenant sees
    exactly its own stream in order; the cross-tenant schedule is fixed
    by the inputs alone, never by thread timing. *)

val cursor : source -> int
(** Ingest cursor: items emitted to the engine so far (plus any
    {!skip}ped on resume).  Counted at merge-emission time — the one
    prefetched head {!merge} may hold is {e not} included, so after an
    idle {!Engine.run} the cursor names exactly the processed prefix.
    Recorded per source in every snapshot. *)

val skip : source -> int -> unit
(** Resume from a snapshot: discard the first [n] items of a freshly
    opened source (the prefix a previous run consumed) and set its
    cursor to [n].  Fails if the source ends early — the trace changed
    since the snapshot was taken. *)

val run :
  ?segment:int -> ?on_idle:(unit -> unit) -> Engine.t -> source list -> unit
(** Register each source's tenant (named after the trace), then
    {!Engine.run} the merged stream.  Sources are closed on the way
    out, also on failure.

    With [segment:n], the stream is drained in budgets of [n] items:
    after each segment the engine is fully idle (pool joined, queues
    drained) and [on_idle] is called — the snapshot hook.  [on_idle]
    also runs once after the final (possibly short) segment, so a
    snapshot of the completed state always exists; without [segment]
    it runs once at end of stream.  Cursors observed inside [on_idle]
    name exactly the processed prefix of every source. *)
