(** Control plane of the service engine — the operator-facing API.

    Thin, documented re-exports of {!Engine}'s admin surface, kept as a
    separate module so data-plane code ({!Engine.run}, {!Ingest}) and
    control-plane code read differently at call sites.

    {b Contract:} every function here must be called while the engine
    is {e idle} — between {!Engine.run}s, from the owning domain.  The
    pool join at the end of each run fences all shard state, so reads
    here see everything the run wrote. *)

type verdict = Engine.verdict = {
  v_kind : string;
  v_flagged : bool;
  v_origins : string list;
}

type tenant_snapshot = Engine.tenant_snapshot = {
  ts_pid : int;
  ts_name : string;
  ts_shard : int;
  ts_verdicts : verdict list;
  ts_stats : Pift_core.Tracker.stats;
  ts_tainted_bytes : int;
  ts_ranges : int;
}

type shard_stats = Engine.shard_stats = {
  ss_shard : int;
  ss_items : int;
  ss_events : int;
  ss_batches : int;
  ss_dropped : int;
  ss_max_queue_depth : int;
  ss_tenants : int;
  ss_evictions : int;
  ss_tainted_bytes : int;
}

type stats = Engine.stats = {
  st_shards : shard_stats list;
  st_items : int;
  st_events : int;
  st_batches : int;
  st_dropped : int;
  st_evictions : int;
  st_tenants : int;
  st_tainted_bytes : int;
}

val register_tenant : Engine.t -> pid:int -> ?name:string -> unit -> unit
(** Pre-create or rename a tenant. *)

val register_source :
  Engine.t -> pid:int -> ?kind:string -> Pift_util.Range.t -> unit
(** Taint a range out of band (a Manager-path source registration). *)

val query_sink :
  Engine.t -> pid:int -> ?kind:string -> Pift_util.Range.t list -> verdict
(** Sink verdict without touching the tenant's verdict log. *)

val untaint_range : Engine.t -> pid:int -> Pift_util.Range.t -> unit

val evict_tenant : Engine.t -> pid:int -> bool
(** Release all tenant state; [false] if the pid was not resident. *)

val snapshot_tenant : Engine.t -> pid:int -> tenant_snapshot option
val tenants : Engine.t -> int list
val stats : Engine.t -> stats
val registries : Engine.t -> Pift_obs.Registry.t array
val telemetries : Engine.t -> Pift_obs.Telemetry.t array

(** {1 Durability}

    The snapshot/restore leg of the control plane — see {!Snapshot}
    for the on-disk format and the full restore contract. *)

type tenant_persisted = Engine.tenant_persisted = {
  tp_pid : int;
  tp_name : string;
  tp_verdicts : verdict list;  (** stream order *)
  tp_state : Pift_core.Tracker.persisted;
}

val persist_tenant : Engine.t -> pid:int -> tenant_persisted option
val persist_tenants : Engine.t -> tenant_persisted list

val restore_tenant : Engine.t -> tenant_persisted -> unit
(** See {!Engine.restore_tenant}: fresh pid slots only; occupancy is
    folded into the shard gauge. *)

val save_snapshot : ?sources:Snapshot.source_entry list -> Engine.t -> string -> unit
(** Write a [PIFTSNAP1] snapshot of every resident tenant, atomically. *)

val load_snapshot : string -> Snapshot.t

val restore_snapshot : Engine.t -> Snapshot.t -> unit
(** Restore every tenant; raises [Invalid_argument] on a config
    mismatch (policy/backend/origins/pid_range — shard count is free). *)
