module Event = Pift_trace.Event
module Recorded = Pift_eval.Recorded
module Trace_io = Pift_eval.Trace_io

type source = {
  src_name : string;
  src_path : string option;  (* None for in-memory recordings *)
  src_pid : int;  (* pid the engine sees *)
  src_orig_pid : int;  (* pid recorded in the trace *)
  src_next : unit -> Recorded.item option;
  src_close : unit -> unit;
  (* Ingest cursor: items handed to the engine (or skipped on resume).
     Counted at merge-emission time, not at head prefetch — [merge]
     holds one prefetched head per source, and a snapshot must record
     only what the engine actually consumed. *)
  mutable src_emitted : int;
}

let tenant_pid ?(pid_range = 1 lsl 20) i =
  if i < 0 then invalid_arg "Ingest.tenant_pid: index must be non-negative";
  (i + 1) * pid_range

let of_recorded ~pid (r : Recorded.t) =
  {
    src_name = r.Recorded.name;
    src_path = None;
    src_pid = pid;
    src_orig_pid = r.Recorded.pid;
    src_next = Recorded.items r;
    src_close = ignore;
    src_emitted = 0;
  }

let of_file ~pid path =
  let r = Trace_io.open_reader path in
  let h = Trace_io.reader_header r in
  {
    src_name = h.Trace_io.h_name;
    src_path = Some path;
    src_pid = pid;
    src_orig_pid = h.Trace_io.h_pid;
    src_next = (fun () -> Trace_io.read_item r);
    src_close = (fun () -> Trace_io.close_reader r);
    src_emitted = 0;
  }

let close s = s.src_close ()
let cursor s = s.src_emitted

(* Resume: discard the items a previous run already consumed (per its
   snapshot cursor), so the next emission is the first unseen item.
   The source must still contain them — a trace shrinking between
   snapshot and restart is corruption, not a clean resume. *)
let skip s n =
  if n < 0 then invalid_arg "Ingest.skip: negative cursor";
  for _ = 1 to n do
    match s.src_next () with
    | Some _ -> s.src_emitted <- s.src_emitted + 1
    | None ->
        failwith
          (Printf.sprintf
             "Ingest.skip: source %s ended before cursor %d (trace changed \
              since snapshot?)"
             s.src_name n)
  done

(* Remap a recorded item onto the source's assigned engine pid.  The
   recording's events may carry child pids (fork); preserving the
   offset from the recorded main pid keeps distinct processes distinct
   inside the tenant's pid block. *)
let to_engine_item s (item : Recorded.item) : Engine.item =
  match item with
  | Recorded.Item_event e ->
      Engine.I_event
        { e with Event.pid = e.Event.pid - s.src_orig_pid + s.src_pid }
  | Recorded.Item_marker (_, Recorded.Source { kind; range }) ->
      Engine.I_source { pid = s.src_pid; kind; range }
  | Recorded.Item_marker (_, Recorded.Sink { kind; ranges }) ->
      Engine.I_sink { pid = s.src_pid; kind; ranges }

(* Deterministic interleave of the per-source streams: repeatedly emit
   the head with the smallest (seq, source index) — strict [<] on seq,
   so the earlier-listed source wins ties.  Only {e head} order across
   sources is decided here; within one source the items come out in
   stream order, which is all per-tenant determinism needs.  The seq of
   a marker is its recorded occurrence seq, so markers compete in the
   same time axis as events. *)
let merge sources : Engine.stream =
  let srcs = Array.of_list sources in
  let n = Array.length srcs in
  let heads = Array.make n None in
  let live = Array.make n (n > 0) in
  let item_seq = function
    | Recorded.Item_event e -> e.Event.seq
    | Recorded.Item_marker (seq, _) -> seq
  in
  let fill i =
    if live.(i) && heads.(i) = None then begin
      match srcs.(i).src_next () with
      | Some it -> heads.(i) <- Some it
      | None -> live.(i) <- false
    end
  in
  fun () ->
    for i = 0 to n - 1 do
      fill i
    done;
    let best = ref (-1) and best_seq = ref max_int in
    for i = 0 to n - 1 do
      match heads.(i) with
      | None -> ()
      | Some it ->
          let seq = item_seq it in
          if !best < 0 || seq < !best_seq then begin
            best := i;
            best_seq := seq
          end
    done;
    if !best < 0 then None
    else begin
      let i = !best in
      let it = Option.get heads.(i) in
      heads.(i) <- None;
      srcs.(i).src_emitted <- srcs.(i).src_emitted + 1;
      Some (to_engine_item srcs.(i) it)
    end

let run ?segment ?on_idle engine sources =
  let idle () = match on_idle with Some f -> f () | None -> () in
  Fun.protect
    ~finally:(fun () -> List.iter close sources)
    (fun () ->
      List.iter
        (fun s ->
          Engine.register_tenant engine ~pid:s.src_pid ~name:s.src_name ())
        sources;
      let stream = merge sources in
      match segment with
      | None ->
          Engine.run engine stream;
          idle ()
      | Some n ->
          if n <= 0 then invalid_arg "Ingest.run: segment must be positive";
          (* Wrap the persistent merged stream in per-segment budgets:
             each [Engine.run] drains at most [n] items and joins the
             pool, so [on_idle] always observes a fully quiescent
             engine — the only state a snapshot may capture. *)
          let exhausted = ref false in
          let budget = ref 0 in
          let bounded () =
            if !budget = 0 then None
            else
              match stream () with
              | None ->
                  exhausted := true;
                  None
              | Some item ->
                  decr budget;
                  Some item
          in
          while not !exhausted do
            budget := n;
            Engine.run engine bounded;
            idle ()
          done)
