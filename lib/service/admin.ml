(* The control-plane face of the engine: everything an operator (or the
   CLI) calls while no run is in flight.  Pure re-exports — the engine
   owns the state; this module exists so call sites read
   [Admin.evict_tenant] rather than reaching into the data-plane
   module, and so the engine-idle contract is documented in one place. *)

type verdict = Engine.verdict = {
  v_kind : string;
  v_flagged : bool;
  v_origins : string list;
}

type tenant_snapshot = Engine.tenant_snapshot = {
  ts_pid : int;
  ts_name : string;
  ts_shard : int;
  ts_verdicts : verdict list;
  ts_stats : Pift_core.Tracker.stats;
  ts_tainted_bytes : int;
  ts_ranges : int;
}

type shard_stats = Engine.shard_stats = {
  ss_shard : int;
  ss_items : int;
  ss_events : int;
  ss_batches : int;
  ss_dropped : int;
  ss_max_queue_depth : int;
  ss_tenants : int;
  ss_evictions : int;
  ss_tainted_bytes : int;
}

type stats = Engine.stats = {
  st_shards : shard_stats list;
  st_items : int;
  st_events : int;
  st_batches : int;
  st_dropped : int;
  st_evictions : int;
  st_tenants : int;
  st_tainted_bytes : int;
}

type tenant_persisted = Engine.tenant_persisted = {
  tp_pid : int;
  tp_name : string;
  tp_verdicts : verdict list;
  tp_state : Pift_core.Tracker.persisted;
}

let register_tenant = Engine.register_tenant
let register_source = Engine.register_source
let query_sink = Engine.query_sink
let untaint_range = Engine.untaint_range
let evict_tenant = Engine.evict_tenant
let snapshot_tenant = Engine.snapshot_tenant
let tenants = Engine.tenants
let stats = Engine.stats
let registries = Engine.registries
let telemetries = Engine.telemetries

(* Durability: the snapshot/restore leg of the control plane.  The
   format and file handling live in [Snapshot]; these aliases keep the
   operator surface in one module. *)
let persist_tenant = Engine.persist_tenant
let persist_tenants = Engine.persist_tenants
let restore_tenant = Engine.restore_tenant
let save_snapshot = Snapshot.save
let load_snapshot = Snapshot.load
let restore_snapshot = Snapshot.restore_tenants
