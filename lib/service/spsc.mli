(** Bounded single-producer single-consumer batch queue — the channel
    between the engine's ingest front and one shard consumer.

    The transfer unit is a batch (array of items): one mutex round-trip
    amortised over the whole batch.  Capacity is counted in batches.

    Backpressure policy is chosen per {!push}: blocking (default;
    deterministic, the producer runs at the slowest consumer's pace) or
    dropping (the batch is discarded and its {e items} counted in
    {!dropped} — surfaced by the engine through per-shard metrics and
    telemetry). *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** [capacity] > 0, in batches. *)

type push_result = Pushed | Dropped

val push : 'a t -> drop_when_full:bool -> 'a array -> push_result
(** Producer side.  With [drop_when_full:false], blocks while the queue
    is at capacity (until the consumer pops, or the queue is aborted).
    With [drop_when_full:true], never blocks: a full queue drops the
    batch.  After {!abort}, every push drops — a dead consumer must not
    wedge the producer.  Raises [Invalid_argument] after {!close}. *)

val close : 'a t -> unit
(** Producer side, end of stream: the consumer drains what is queued,
    then {!pop} returns [None]. *)

val abort : 'a t -> unit
(** Consumer side, failure path: wake everyone, make every subsequent
    push drop and every pop return [None]. *)

val pop : 'a t -> 'a array option
(** Consumer side: blocks until a batch, [None] once closed-and-drained
    (or aborted). *)

val length : 'a t -> int
(** Batches currently queued. *)

val dropped : 'a t -> int
(** Items discarded by non-blocking pushes (and pushes after abort). *)

val max_depth : 'a t -> int
(** Peak queued batches — how close the producer came to blocking. *)
