module Range = Pift_util.Range
module Event = Pift_trace.Event
module Policy = Pift_core.Policy
module Store = Pift_core.Store
module Tracker = Pift_core.Tracker
module Provenance = Pift_core.Provenance
module Pool = Pift_par.Pool
module Registry = Pift_obs.Registry
module Telemetry = Pift_obs.Telemetry
module Counter = Pift_obs.Metric.Counter
module Gauge = Pift_obs.Metric.Gauge

type item =
  | I_event of Event.t
  | I_source of { pid : int; kind : string; range : Range.t }
  | I_sink of { pid : int; kind : string; ranges : Range.t list }
  | I_untaint of { pid : int; range : Range.t }
  | I_evict of { pid : int }

type stream = unit -> item option

type verdict = { v_kind : string; v_flagged : bool; v_origins : string list }

(* One tenant = one pid = one private tracker stack (store + optional
   provenance sidecar).  Private per tenant, not per shard: the tracker's
   stats and series are then the tenant's alone, which is what makes the
   interleaved engine byte-identical to N isolated replays — the
   differential harness's whole claim. *)
type tenant = {
  tn_pid : int;
  mutable tn_name : string;
  tn_tracker : Tracker.t;
  mutable tn_verdicts_rev : verdict list;
  mutable tn_bytes : int;  (* last synced store occupancy, bytes *)
}

type shard = {
  sh_id : int;
  sh_tenants : (int, tenant) Hashtbl.t;
  sh_registry : Registry.t;
  sh_telemetry : Telemetry.t option;
  mutable sh_queue : item Spsc.t;  (* fresh per run *)
  (* registry cells *)
  sh_c_items : Counter.t;
  sh_c_events : Counter.t;
  sh_c_batches : Counter.t;
  sh_c_evictions : Counter.t;
  sh_c_dropped : Counter.t;
  sh_g_tenants : Gauge.t;
  sh_g_bytes : Gauge.t;
  sh_g_queue : Gauge.t;
  (* plain mirrors for stats () *)
  mutable sh_items : int;
  mutable sh_events : int;
  mutable sh_batches : int;
  mutable sh_evictions : int;
  mutable sh_dropped : int;
  mutable sh_max_queue_depth : int;
  mutable sh_bytes : int;  (* live occupancy across this shard's tenants *)
}

type config = {
  shards : int;
  policy : Policy.t;
  backend : Store.backend;
  queue_capacity : int;
  batch : int;
  pid_range : int;
  drop_when_full : bool;
  with_origins : bool;
}

type t = {
  cfg : config;
  pool : Pool.t;
  shard_arr : shard array;
  mutable closed : bool;
  (* Fault injection for the crash-recovery tests: the consumer of
     [fault_shard] raises after processing [fault_after] more items,
     exercising the Spsc abort path exactly as a real consumer death
     would.  Armed while idle; only that shard's consumer reads and
     disarms it during a run. *)
  mutable fault_shard : int;
  mutable fault_after : int;  (* negative = disarmed *)
}

let make_shard ~telemetry_capacity id =
  let registry = Registry.create () in
  let c help name = Registry.counter registry ~help name in
  let g help name = Registry.gauge registry ~help name in
  let telemetry =
    if telemetry_capacity > 0 then
      Some (Telemetry.create ~capacity:telemetry_capacity ())
    else None
  in
  let sh =
    {
      sh_id = id;
      sh_tenants = Hashtbl.create 8;
      sh_registry = registry;
      sh_telemetry = telemetry;
      sh_queue = Spsc.create ~capacity:1 ();
      sh_c_items = c "stream items routed to this shard" "pift_service_items_total";
      sh_c_events = c "instruction events observed" "pift_service_events_total";
      sh_c_batches = c "batches consumed off the shard queue" "pift_service_batches_total";
      sh_c_evictions = c "tenants evicted" "pift_service_evictions_total";
      sh_c_dropped =
        c "items dropped by the non-blocking backpressure policy"
          "pift_service_dropped_total";
      sh_g_tenants = g "resident tenants" "pift_service_tenants";
      sh_g_bytes = g "tainted bytes across resident tenants" "pift_service_tainted_bytes";
      sh_g_queue = g "shard queue depth, in batches" "pift_service_queue_depth";
      sh_items = 0;
      sh_events = 0;
      sh_batches = 0;
      sh_evictions = 0;
      sh_dropped = 0;
      sh_max_queue_depth = 0;
      sh_bytes = 0;
    }
  in
  (match telemetry with
  | None -> ()
  | Some te ->
      Telemetry.set_source te ~name:"tainted_bytes" (fun () ->
          float_of_int sh.sh_bytes);
      Telemetry.set_source te ~name:"tenants" (fun () ->
          float_of_int (Hashtbl.length sh.sh_tenants));
      Telemetry.set_source te ~name:"queue_depth" (fun () ->
          float_of_int (Spsc.length sh.sh_queue)));
  sh

let create ?(shards = 1) ?(policy = Policy.default)
    ?(backend = Store.Functional) ?(queue_capacity = 64) ?(batch = 128)
    ?(pid_range = 1 lsl 20) ?(drop_when_full = false) ?(with_origins = false)
    ?(telemetry_capacity = 0) () =
  if shards <= 0 then invalid_arg "Engine.create: shards must be positive";
  if batch <= 0 then invalid_arg "Engine.create: batch must be positive";
  if pid_range <= 0 then invalid_arg "Engine.create: pid_range must be positive";
  let cfg =
    {
      shards;
      policy;
      backend;
      queue_capacity;
      batch;
      pid_range;
      drop_when_full;
      with_origins;
    }
  in
  {
    cfg;
    (* One pool slot per shard consumer plus slot 0 for the ingest
       producer; [Pool.run_job] hands each role exactly one call. *)
    pool = Pool.create ~jobs:(shards + 1) ();
    shard_arr = Array.init shards (make_shard ~telemetry_capacity);
    closed = false;
    fault_shard = 0;
    fault_after = -1;
  }

let shards t = t.cfg.shards
let policy t = t.cfg.policy
let backend t = t.cfg.backend
let pid_range t = t.cfg.pid_range
let with_origins t = t.cfg.with_origins
let registries t = Array.map (fun sh -> sh.sh_registry) t.shard_arr

let telemetries t =
  let tes =
    Array.to_list
      (Array.map (fun sh -> sh.sh_telemetry) t.shard_arr)
  in
  Array.of_list (List.filter_map Fun.id tes)

(* PID-range partitioning: pids land on shards in contiguous blocks of
   [pid_range], so one process's whole address space of pids-it-spawns
   stays local while distinct tenants spread round-robin. *)
let shard_of t pid =
  let s = pid / t.cfg.pid_range mod t.cfg.shards in
  t.shard_arr.((s + t.cfg.shards) mod t.cfg.shards)

let tenant_of t sh pid =
  match Hashtbl.find_opt sh.sh_tenants pid with
  | Some tn -> tn
  | None ->
      let cfg = t.cfg in
      let store = Store.create ~backend:cfg.backend () in
      let prov =
        if cfg.with_origins then
          Some (Provenance.create ~policy:cfg.policy ~backend:cfg.backend ())
        else None
      in
      let tracker = Tracker.create ~policy:cfg.policy ~store ?prov () in
      let tn =
        {
          tn_pid = pid;
          tn_name = Printf.sprintf "pid-%d" pid;
          tn_tracker = tracker;
          tn_verdicts_rev = [];
          tn_bytes = 0;
        }
      in
      Hashtbl.add sh.sh_tenants pid tn;
      Gauge.set sh.sh_g_tenants (Hashtbl.length sh.sh_tenants);
      tn

(* Occupancy delta after any op that can move the tenant's store: the
   shard gauge is a running sum of per-tenant live bytes, so eviction
   can subtract a tenant's exact contribution and return the gauge to
   the remaining tenants' baseline. *)
let sync_bytes sh tn =
  let now = Tracker.current_tainted_bytes tn.tn_tracker in
  if now <> tn.tn_bytes then begin
    sh.sh_bytes <- sh.sh_bytes + now - tn.tn_bytes;
    tn.tn_bytes <- now;
    Gauge.set sh.sh_g_bytes sh.sh_bytes
  end

let evict_local sh tn =
  Tracker.release_pid tn.tn_tracker ~pid:tn.tn_pid;
  sh.sh_bytes <- sh.sh_bytes - tn.tn_bytes;
  Gauge.set sh.sh_g_bytes sh.sh_bytes;
  Hashtbl.remove sh.sh_tenants tn.tn_pid;
  sh.sh_evictions <- sh.sh_evictions + 1;
  Counter.incr sh.sh_c_evictions;
  Gauge.set sh.sh_g_tenants (Hashtbl.length sh.sh_tenants)

let sink_verdict t tn ~pid ~kind ranges =
  let flagged =
    List.exists (fun r -> Tracker.is_tainted tn.tn_tracker ~pid r) ranges
  in
  let origins =
    if t.cfg.with_origins then
      List.sort_uniq String.compare
        (List.concat_map
           (fun r -> Tracker.origins_of tn.tn_tracker ~pid r)
           ranges)
    else []
  in
  { v_kind = kind; v_flagged = flagged; v_origins = origins }

let process_item t sh item =
  sh.sh_items <- sh.sh_items + 1;
  Counter.incr sh.sh_c_items;
  match item with
  | I_event e ->
      sh.sh_events <- sh.sh_events + 1;
      Counter.incr sh.sh_c_events;
      let tn = tenant_of t sh e.Event.pid in
      Tracker.observe tn.tn_tracker e;
      sync_bytes sh tn
  | I_source { pid; kind; range } ->
      let tn = tenant_of t sh pid in
      Tracker.taint_source ~kind tn.tn_tracker ~pid range;
      sync_bytes sh tn
  | I_sink { pid; kind; ranges } ->
      let tn = tenant_of t sh pid in
      tn.tn_verdicts_rev <-
        sink_verdict t tn ~pid ~kind ranges :: tn.tn_verdicts_rev
  | I_untaint { pid; range } ->
      let tn = tenant_of t sh pid in
      Tracker.untaint_range tn.tn_tracker ~pid range;
      sync_bytes sh tn
  | I_evict { pid } -> (
      match Hashtbl.find_opt sh.sh_tenants pid with
      | None -> ()
      | Some tn -> evict_local sh tn)

let pid_of_item = function
  | I_event e -> e.Event.pid
  | I_source { pid; _ } | I_sink { pid; _ } | I_untaint { pid; _ }
  | I_evict { pid } ->
      pid

(* Ingest producer (pool slot 0): route each item to its shard's local
   batch buffer, push full batches through the bounded queue, close all
   queues at end of stream — also on failure, so shard consumers always
   see end-of-stream and the pool join cannot deadlock on a producer
   exception. *)
let produce t stream =
  let n = t.cfg.shards in
  let dummy = I_evict { pid = min_int } in
  let bufs = Array.init n (fun _ -> Array.make t.cfg.batch dummy) in
  let fills = Array.make n 0 in
  let flush i =
    if fills.(i) > 0 then begin
      let batch = Array.sub bufs.(i) 0 fills.(i) in
      fills.(i) <- 0;
      (* A [Dropped] result is already counted by the queue. *)
      ignore
        (Spsc.push t.shard_arr.(i).sh_queue
           ~drop_when_full:t.cfg.drop_when_full batch)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to n - 1 do
        flush i;
        Spsc.close t.shard_arr.(i).sh_queue
      done)
    (fun () ->
      let rec go () =
        match stream () with
        | None -> ()
        | Some item ->
            let sh = shard_of t (pid_of_item item) in
            let i = sh.sh_id in
            bufs.(i).(fills.(i)) <- item;
            fills.(i) <- fills.(i) + 1;
            if fills.(i) = t.cfg.batch then flush i;
            go ()
      in
      go ())

(* Shard consumer (pool slot 1 + shard id): drain the queue batch by
   batch until closed.  A consumer failure aborts its queue first, so
   the producer can never block against it, then propagates through the
   pool join. *)
exception Injected_fault of int

let inject_fault t ~shard ~after_items =
  if shard < 0 || shard >= t.cfg.shards then
    invalid_arg "Engine.inject_fault: no such shard";
  if after_items < 0 then
    invalid_arg "Engine.inject_fault: after_items must be non-negative";
  t.fault_shard <- shard;
  t.fault_after <- after_items

let consume t sh =
  let q = sh.sh_queue in
  try
    let rec go () =
      match Spsc.pop q with
      | None -> ()
      | Some batch ->
          sh.sh_batches <- sh.sh_batches + 1;
          Counter.incr sh.sh_c_batches;
          Array.iter
            (fun item ->
              if t.fault_after >= 0 && t.fault_shard = sh.sh_id then begin
                if t.fault_after = 0 then begin
                  t.fault_after <- -1;
                  raise (Injected_fault sh.sh_id)
                end;
                t.fault_after <- t.fault_after - 1
              end;
              (match sh.sh_telemetry with
              | None -> ()
              | Some te -> Telemetry.bump te);
              process_item t sh item)
            batch;
          Gauge.set sh.sh_g_queue (Spsc.length q);
          go ()
    in
    go ()
  with exn ->
    Spsc.abort q;
    raise exn

let run t stream =
  if t.closed then invalid_arg "Engine.run: engine is shut down";
  (* Fresh queues per run: the previous run closed them. *)
  Array.iter
    (fun sh -> sh.sh_queue <- Spsc.create ~capacity:t.cfg.queue_capacity ())
    t.shard_arr;
  Fun.protect
    ~finally:(fun () ->
      (* Fold the run's queue tallies into the shard totals whether the
         run succeeded or not. *)
      Array.iter
        (fun sh ->
          let q = sh.sh_queue in
          let d = Spsc.dropped q in
          if d > 0 then begin
            sh.sh_dropped <- sh.sh_dropped + d;
            Counter.add sh.sh_c_dropped d
          end;
          let peak = Spsc.max_depth q in
          if peak > sh.sh_max_queue_depth then sh.sh_max_queue_depth <- peak;
          Gauge.set sh.sh_g_queue peak)
        t.shard_arr)
    (fun () ->
      Pool.run_job t.pool (fun ~worker ->
          if worker = 0 then produce t stream
          else consume t t.shard_arr.(worker - 1)))

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_engine ?shards ?policy ?backend ?queue_capacity ?batch ?pid_range
    ?drop_when_full ?with_origins ?telemetry_capacity f =
  let t =
    create ?shards ?policy ?backend ?queue_capacity ?batch ?pid_range
      ?drop_when_full ?with_origins ?telemetry_capacity ()
  in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- admin API (engine idle: between runs, from the owning thread) ---- *)

let find_tenant t pid = Hashtbl.find_opt (shard_of t pid).sh_tenants pid

let register_tenant t ~pid ?name () =
  let tn = tenant_of t (shard_of t pid) pid in
  match name with Some n -> tn.tn_name <- n | None -> ()

let register_source t ~pid ?(kind = "source") range =
  let sh = shard_of t pid in
  let tn = tenant_of t sh pid in
  Tracker.taint_source ~kind tn.tn_tracker ~pid range;
  sync_bytes sh tn

let query_sink t ~pid ?(kind = "sink") ranges =
  match find_tenant t pid with
  | None -> { v_kind = kind; v_flagged = false; v_origins = [] }
  | Some tn -> sink_verdict t tn ~pid ~kind ranges

let untaint_range t ~pid range =
  match find_tenant t pid with
  | None -> ()
  | Some tn ->
      let sh = shard_of t pid in
      Tracker.untaint_range tn.tn_tracker ~pid range;
      sync_bytes sh tn

let evict_tenant t ~pid =
  match find_tenant t pid with
  | None -> false
  | Some tn ->
      evict_local (shard_of t pid) tn;
      true

type tenant_snapshot = {
  ts_pid : int;
  ts_name : string;
  ts_shard : int;
  ts_verdicts : verdict list;
  ts_stats : Tracker.stats;
  ts_tainted_bytes : int;
  ts_ranges : int;
}

let snapshot_tenant t ~pid =
  match find_tenant t pid with
  | None -> None
  | Some tn ->
      let sh = shard_of t pid in
      Some
        {
          ts_pid = pid;
          ts_name = tn.tn_name;
          ts_shard = sh.sh_id;
          ts_verdicts = List.rev tn.tn_verdicts_rev;
          ts_stats = Tracker.stats tn.tn_tracker;
          ts_tainted_bytes = Tracker.current_tainted_bytes tn.tn_tracker;
          ts_ranges = Tracker.current_ranges tn.tn_tracker;
        }

let tenants t =
  List.sort compare
    (Array.to_list t.shard_arr
    |> List.concat_map (fun sh ->
           Hashtbl.fold (fun pid _ acc -> pid :: acc) sh.sh_tenants []))

(* --- durable persistence (engine idle) --------------------------------- *)

type tenant_persisted = {
  tp_pid : int;
  tp_name : string;
  tp_verdicts : verdict list;  (* stream order *)
  tp_state : Tracker.persisted;
}

let persist_tenant t ~pid =
  match find_tenant t pid with
  | None -> None
  | Some tn ->
      Some
        {
          tp_pid = pid;
          tp_name = tn.tn_name;
          tp_verdicts = List.rev tn.tn_verdicts_rev;
          tp_state = Tracker.persist tn.tn_tracker;
        }

let persist_tenants t = List.filter_map (fun pid -> persist_tenant t ~pid) (tenants t)

(* Rebuilding a tenant routes it to whatever shard the *current* config
   maps its pid to — a snapshot taken at 4 shards restores cleanly into
   a 1-shard engine, because shard placement never leaks into tenant
   state.  [sync_bytes] folds the restored occupancy into the shard
   gauge, so a restore immediately followed by an eviction returns the
   gauge to the survivors' baseline (the restore-then-evict test). *)
let restore_tenant t tp =
  let sh = shard_of t tp.tp_pid in
  if Hashtbl.mem sh.sh_tenants tp.tp_pid then
    invalid_arg
      (Printf.sprintf "Engine.restore_tenant: pid %d already resident"
         tp.tp_pid);
  let tn = tenant_of t sh tp.tp_pid in
  tn.tn_name <- tp.tp_name;
  tn.tn_verdicts_rev <- List.rev tp.tp_verdicts;
  Tracker.restore tn.tn_tracker tp.tp_state;
  sync_bytes sh tn

type shard_stats = {
  ss_shard : int;
  ss_items : int;
  ss_events : int;
  ss_batches : int;
  ss_dropped : int;
  ss_max_queue_depth : int;
  ss_tenants : int;
  ss_evictions : int;
  ss_tainted_bytes : int;
}

type stats = {
  st_shards : shard_stats list;
  st_items : int;
  st_events : int;
  st_batches : int;
  st_dropped : int;
  st_evictions : int;
  st_tenants : int;
  st_tainted_bytes : int;
}

let stats t =
  let per_shard =
    Array.to_list
      (Array.map
         (fun sh ->
           {
             ss_shard = sh.sh_id;
             ss_items = sh.sh_items;
             ss_events = sh.sh_events;
             ss_batches = sh.sh_batches;
             ss_dropped = sh.sh_dropped;
             ss_max_queue_depth = sh.sh_max_queue_depth;
             ss_tenants = Hashtbl.length sh.sh_tenants;
             ss_evictions = sh.sh_evictions;
             ss_tainted_bytes = sh.sh_bytes;
           })
         t.shard_arr)
  in
  List.fold_left
    (fun acc ss ->
      {
        acc with
        st_items = acc.st_items + ss.ss_items;
        st_events = acc.st_events + ss.ss_events;
        st_batches = acc.st_batches + ss.ss_batches;
        st_dropped = acc.st_dropped + ss.ss_dropped;
        st_evictions = acc.st_evictions + ss.ss_evictions;
        st_tenants = acc.st_tenants + ss.ss_tenants;
        st_tainted_bytes = acc.st_tainted_bytes + ss.ss_tainted_bytes;
      })
    {
      st_shards = per_shard;
      st_items = 0;
      st_events = 0;
      st_batches = 0;
      st_dropped = 0;
      st_evictions = 0;
      st_tenants = 0;
      st_tainted_bytes = 0;
    }
    per_shard
