(** The long-lived multi-tenant taint engine.

    One engine owns [shards] shard states, each pinned to one pool
    worker slot.  A shard holds its resident tenants — one pid, one
    private {!Pift_core.Tracker} stack (store + optional provenance
    sidecar) — plus a per-shard metrics registry, optional telemetry
    ring, and the bounded queue its consumer drains during a {!run}.

    {b Sharding.}  Pids are partitioned by contiguous range:
    [shard_of pid = (pid / pid_range) mod shards].  Routing is pure
    arithmetic, so a pid's shard never changes and no cross-shard
    state exists.

    {b Determinism.}  Because every tenant owns a private tracker and
    items of one pid are routed to one shard through a FIFO queue in
    stream order, the per-tenant verdicts, origin sets, and stats after
    an interleaved run are byte-identical to replaying each tenant's
    stream in isolation — at any shard count.  The differential harness
    ([test_service], the CI serve leg) enforces this.

    {b Concurrency contract.}  {!run} is the only concurrent region:
    slot 0 produces, slots 1..shards consume, and the pool join fences
    all shard state before returning.  Every other function (the admin
    API, {!stats}, {!snapshot_tenant}) must be called while the engine
    is idle — between runs, from the owning domain. *)

type t

type item =
  | I_event of Pift_trace.Event.t  (** hardware fast path *)
  | I_source of { pid : int; kind : string; range : Pift_util.Range.t }
      (** in-band source registration *)
  | I_sink of { pid : int; kind : string; ranges : Pift_util.Range.t list }
      (** in-band sink query; the verdict lands in the tenant's log *)
  | I_untaint of { pid : int; range : Pift_util.Range.t }
  | I_evict of { pid : int }  (** in-band tenant eviction *)

type stream = unit -> item option
(** Pull stream of interleaved multi-tenant items ([None] = end). *)

val create :
  ?shards:int ->
  ?policy:Pift_core.Policy.t ->
  ?backend:Pift_core.Store.backend ->
  ?queue_capacity:int ->
  ?batch:int ->
  ?pid_range:int ->
  ?drop_when_full:bool ->
  ?with_origins:bool ->
  ?telemetry_capacity:int ->
  unit ->
  t
(** [shards] (default 1) sets the shard count and spawns a pool of
    [shards + 1] workers (slot 0 is the ingest producer).  [policy] and
    [backend] configure every tenant tracker.  [queue_capacity]
    (default 64) bounds each shard queue in {e batches} of [batch]
    (default 128) items.  [pid_range] (default [2{^20}]) is the width
    of the contiguous pid blocks mapped to one shard.
    [drop_when_full:true] switches backpressure from blocking the
    producer to dropping batches (counted per shard, surfaced in
    {!stats} and metrics).  [with_origins] threads a provenance sidecar
    through every tenant so sink verdicts carry origin sets.
    [telemetry_capacity > 0] attaches one telemetry ring per shard
    (sources: tainted bytes, tenant count, queue depth; bumped once per
    consumed item). *)

val run : t -> stream -> unit
(** Drain [stream] to completion: route every item to its pid's shard,
    push batches through the bounded queues, process them on the shard
    consumers.  Fresh queues per run; on any failure (producer or
    consumer) the queues are closed/aborted so no domain wedges, and
    the first exception re-raises here after all workers drain.
    Tenants are created on first touch and survive across runs until
    evicted. *)

val shutdown : t -> unit
(** Join the pool domains.  Idempotent; {!run} refuses afterwards
    (admin reads still work). *)

val with_engine :
  ?shards:int ->
  ?policy:Pift_core.Policy.t ->
  ?backend:Pift_core.Store.backend ->
  ?queue_capacity:int ->
  ?batch:int ->
  ?pid_range:int ->
  ?drop_when_full:bool ->
  ?with_origins:bool ->
  ?telemetry_capacity:int ->
  (t -> 'a) ->
  'a
(** [create], run [f], and {!shutdown} (also on exception). *)

(** {1 Admin API}

    Engine-idle only (see the concurrency contract above). *)

val register_tenant : t -> pid:int -> ?name:string -> unit -> unit
(** Pre-create (or rename) the tenant for [pid].  Tenants are otherwise
    auto-created on first touch with name ["pid-<pid>"]. *)

val register_source :
  t -> pid:int -> ?kind:string -> Pift_util.Range.t -> unit
(** Out-of-band source registration, applied directly to the tenant's
    tracker (not counted as a stream item). *)

type verdict = {
  v_kind : string;
  v_flagged : bool;
  v_origins : string list;  (** sorted; [[]] without [with_origins] *)
}

val query_sink :
  t -> pid:int -> ?kind:string -> Pift_util.Range.t list -> verdict
(** Pure sink query: computes the verdict without appending it to the
    tenant's log.  An unknown pid is clean. *)

val untaint_range : t -> pid:int -> Pift_util.Range.t -> unit
(** Out-of-band untaint; no-op for an unknown pid. *)

val evict_tenant : t -> pid:int -> bool
(** Release the tenant's store, provenance, and window state, subtract
    its bytes from the shard occupancy gauge, and forget it.  Returns
    [false] if the pid was not resident.  A later touch of the same pid
    starts a clean tenant. *)

type tenant_snapshot = {
  ts_pid : int;
  ts_name : string;
  ts_shard : int;
  ts_verdicts : verdict list;  (** in-band sink verdicts, stream order *)
  ts_stats : Pift_core.Tracker.stats;
  ts_tainted_bytes : int;  (** live, not peak *)
  ts_ranges : int;
}

val snapshot_tenant : t -> pid:int -> tenant_snapshot option

val tenants : t -> int list
(** Resident pids, sorted. *)

(** {1 Durable persistence}

    Engine-idle only.  {!tenant_persisted} is the full taint stack of
    one tenant — name, in-band verdict log, and the tracker's
    {!Pift_core.Tracker.persisted} state (store intervals, windows,
    stats and peaks, provenance origin sets) — as plain data;
    {!Snapshot} encodes it to the on-disk [PIFTSNAP1] format. *)

type tenant_persisted = {
  tp_pid : int;
  tp_name : string;
  tp_verdicts : verdict list;  (** stream order *)
  tp_state : Pift_core.Tracker.persisted;
}

val persist_tenant : t -> pid:int -> tenant_persisted option

val persist_tenants : t -> tenant_persisted list
(** Every resident tenant, sorted by pid — deterministic, identical
    engine states persist identically at any shard count. *)

val restore_tenant : t -> tenant_persisted -> unit
(** Recreate a tenant from persisted state: same name, verdict log,
    and tracker behaviour as the persisted one.  The tenant lands on
    whatever shard the {e current} config routes its pid to, so a
    snapshot restores cleanly into an engine with a different shard
    count.  The restored occupancy is folded into the shard's byte
    gauge (so a subsequent eviction returns the gauge to the
    survivors' baseline).  Raises [Invalid_argument] if the pid is
    already resident — restore into fresh or evicted slots only. *)

(** {1 Fault injection}

    Test hook for crash-recovery suites. *)

exception Injected_fault of int
(** Carries the faulting shard id. *)

val inject_fault : t -> shard:int -> after_items:int -> unit
(** Arm (engine-idle) a one-shot fault: during the next {!run}, the
    consumer of [shard] raises {!Injected_fault} after processing
    [after_items] more items.  This drives the production failure path
    — the dying consumer aborts its queue so the producer cannot block
    against it, every queue closes, and {!run} re-raises the fault
    after the pool drains.  The engine survives: admin calls and
    further runs still work, exactly like any consumer death. *)

type shard_stats = {
  ss_shard : int;
  ss_items : int;
  ss_events : int;
  ss_batches : int;
  ss_dropped : int;  (** items lost to the dropping policy, all runs *)
  ss_max_queue_depth : int;  (** peak queued batches, all runs *)
  ss_tenants : int;
  ss_evictions : int;
  ss_tainted_bytes : int;  (** live occupancy across resident tenants *)
}

type stats = {
  st_shards : shard_stats list;  (** by shard id *)
  st_items : int;
  st_events : int;
  st_batches : int;
  st_dropped : int;
  st_evictions : int;
  st_tenants : int;
  st_tainted_bytes : int;
}

val stats : t -> stats

(** {1 Introspection} *)

val shards : t -> int
val policy : t -> Pift_core.Policy.t
val backend : t -> Pift_core.Store.backend
val pid_range : t -> int
val with_origins : t -> bool

val registries : t -> Pift_obs.Registry.t array
(** Per-shard metrics registries, by shard id ([pift_service_*]
    counters and gauges).  Merge into one with
    {!Pift_obs.Registry.merge} for a combined snapshot. *)

val telemetries : t -> Pift_obs.Telemetry.t array
(** Per-shard telemetry rings (empty array unless created with
    [telemetry_capacity > 0]). *)
