module Range = Pift_util.Range
module Wire = Pift_util.Wire
module Policy = Pift_core.Policy
module Store = Pift_core.Store
module Tracker = Pift_core.Tracker
module Provenance = Pift_core.Provenance

(* On-disk durability for the multi-tenant engine.

   Layout (all integers are Wire varints; strings are length-prefixed
   raw bytes; ranges are [svarint lo, varint length]):

   {v
   "PIFTSNAP" <version byte '1'>
   <varint payload-length> <payload>   repeated until EOF
   payload := tag byte, then fields
     0 manifest  shards pid_range backend(str) with_origins(byte)
                 ni nt untaint(byte) n_sources n_tenants
     1 source    name(str) path(str) pid(hex str) orig-pid(hex str)
                 cursor
     2 tenant    pid name(str)
                 verdicts:  n { kind(str) flagged(byte) n-origins str* }
                 stats:     taint untaint lookups tainted_loads
                            max_bytes max_ranges events
                 last_time(svarint)
                 windows:   n { pid ltlt(svarint) nt_used }
                 store:     n { pid n-ranges range* }
                 prov(byte) — when 1:
                   entries:      n { pid label(str) n-ranges range* }
                   windows:      n { pid ltlt(svarint) nt_used
                                     n-labels str*
                                     opener_seq(svarint)
                                     opener(byte) [range] }
                   known-labels: n str*
                   probes
   v}

   The manifest must be record 1 and carries the engine config a
   restore needs (policy, backend, origins mode) plus the pid-block
   layout and expected record counts, so truncation at a record
   boundary — which reads as a clean EOF — is still caught.  Source
   pids are hex strings rather than varints: they cross the snapshot /
   trace-file boundary (a restore re-derives tenant pids from them),
   and the strict hex validation gives corrupt bytes a typed,
   positioned failure instead of a silently misrouted tenant.

   Failure discipline matches Trace_io: every corrupt byte surfaces as
   [Failure "Snapshot: record N: ..."], never a bare exception, and a
   streaming {!iter} delivers every intact prefix record before the
   positioned error.  Writes are atomic (temp file + rename), so a
   crash mid-snapshot leaves the previous snapshot intact. *)

let magic = "PIFTSNAP"
let version = '1'
let max_record_payload = 1 lsl 24

let tag_manifest = 0
let tag_source = 1
let tag_tenant = 2

type manifest = {
  m_shards : int;
  m_pid_range : int;
  m_backend : Store.backend;
  m_with_origins : bool;
  m_policy : Policy.t;
  m_sources : int;  (* expected source records *)
  m_tenants : int;  (* expected tenant records *)
}

type source_entry = {
  se_name : string;
  se_path : string;  (* "" for in-memory sources *)
  se_pid : int;
  se_orig_pid : int;
  se_cursor : int;
}

type t = {
  manifest : manifest;
  sources : source_entry list;
  tenants : Engine.tenant_persisted list;
}

type record =
  | R_manifest of manifest
  | R_source of source_entry
  | R_tenant of Engine.tenant_persisted

(* --- encoding ----------------------------------------------------------- *)

let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let add_range buf r =
  Wire.add_svarint buf (Range.lo r);
  Wire.add_varint buf (Range.length r)

let add_ranges buf rs =
  Wire.add_varint buf (List.length rs);
  List.iter (add_range buf) rs

let add_manifest buf m =
  Buffer.add_char buf (Char.chr tag_manifest);
  Wire.add_varint buf m.m_shards;
  Wire.add_varint buf m.m_pid_range;
  Wire.add_string buf (Store.backend_to_string m.m_backend);
  add_bool buf m.m_with_origins;
  Wire.add_varint buf m.m_policy.Policy.ni;
  Wire.add_varint buf m.m_policy.Policy.nt;
  add_bool buf m.m_policy.Policy.untaint;
  Wire.add_varint buf m.m_sources;
  Wire.add_varint buf m.m_tenants

let add_source buf se =
  Buffer.add_char buf (Char.chr tag_source);
  Wire.add_string buf se.se_name;
  Wire.add_string buf se.se_path;
  Wire.add_string buf (Printf.sprintf "%x" se.se_pid);
  Wire.add_string buf (Printf.sprintf "%x" se.se_orig_pid);
  Wire.add_varint buf se.se_cursor

let add_prov buf (pp : Provenance.persisted) =
  Wire.add_varint buf (List.length pp.Provenance.ps_entries);
  List.iter
    (fun ((pid, label), ranges) ->
      Wire.add_varint buf pid;
      Wire.add_string buf label;
      add_ranges buf ranges)
    pp.Provenance.ps_entries;
  Wire.add_varint buf (List.length pp.Provenance.ps_windows);
  List.iter
    (fun (pw : Provenance.persisted_window) ->
      Wire.add_varint buf pw.Provenance.pw_pid;
      Wire.add_svarint buf pw.Provenance.pw_ltlt;
      Wire.add_varint buf pw.Provenance.pw_nt_used;
      Wire.add_varint buf (List.length pw.Provenance.pw_labels);
      List.iter (Wire.add_string buf) pw.Provenance.pw_labels;
      Wire.add_svarint buf pw.Provenance.pw_opener_seq;
      match pw.Provenance.pw_opener_range with
      | None -> add_bool buf false
      | Some r ->
          add_bool buf true;
          add_range buf r)
    pp.Provenance.ps_windows;
  Wire.add_varint buf (List.length pp.Provenance.ps_known_labels);
  List.iter (Wire.add_string buf) pp.Provenance.ps_known_labels;
  Wire.add_varint buf pp.Provenance.ps_probes

let add_tenant buf (tp : Engine.tenant_persisted) =
  Buffer.add_char buf (Char.chr tag_tenant);
  Wire.add_varint buf tp.Engine.tp_pid;
  Wire.add_string buf tp.Engine.tp_name;
  Wire.add_varint buf (List.length tp.Engine.tp_verdicts);
  List.iter
    (fun (v : Engine.verdict) ->
      Wire.add_string buf v.Engine.v_kind;
      add_bool buf v.Engine.v_flagged;
      Wire.add_varint buf (List.length v.Engine.v_origins);
      List.iter (Wire.add_string buf) v.Engine.v_origins)
    tp.Engine.tp_verdicts;
  let p = tp.Engine.tp_state in
  let s = p.Tracker.p_stats in
  Wire.add_varint buf s.Tracker.taint_ops;
  Wire.add_varint buf s.Tracker.untaint_ops;
  Wire.add_varint buf s.Tracker.lookups;
  Wire.add_varint buf s.Tracker.tainted_loads;
  Wire.add_varint buf s.Tracker.max_tainted_bytes;
  Wire.add_varint buf s.Tracker.max_ranges;
  Wire.add_varint buf s.Tracker.events;
  Wire.add_svarint buf p.Tracker.p_last_time;
  Wire.add_varint buf (List.length p.Tracker.p_windows);
  List.iter
    (fun (pid, ltlt, nt_used) ->
      Wire.add_varint buf pid;
      Wire.add_svarint buf ltlt;
      Wire.add_varint buf nt_used)
    p.Tracker.p_windows;
  Wire.add_varint buf (List.length p.Tracker.p_store);
  List.iter
    (fun (pid, ranges) ->
      Wire.add_varint buf pid;
      add_ranges buf ranges)
    p.Tracker.p_store;
  match p.Tracker.p_prov with
  | None -> add_bool buf false
  | Some pp ->
      add_bool buf true;
      add_prov buf pp

let to_channel t oc =
  output_string oc magic;
  output_char oc version;
  let payload = Buffer.create 256 in
  let prefix = Buffer.create 8 in
  let emit () =
    Buffer.clear prefix;
    Wire.add_varint prefix (Buffer.length payload);
    Buffer.output_buffer oc prefix;
    Buffer.output_buffer oc payload;
    Buffer.clear payload
  in
  add_manifest payload t.manifest;
  emit ();
  List.iter
    (fun se ->
      add_source payload se;
      emit ())
    t.sources;
  List.iter
    (fun tp ->
      add_tenant payload tp;
      emit ())
    t.tenants

(* Atomic: a crash (or SIGKILL) between two snapshot cadences must
   never leave a half-written file where the last good snapshot was —
   recovery always finds either the old complete snapshot or the new
   one.  The temp file lives in the same directory so the rename stays
   within one filesystem. *)
let write path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel t oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --- decoding ----------------------------------------------------------- *)

let fail_record n msg = failwith (Printf.sprintf "Snapshot: record %d: %s" n msg)

(* Decoder over one buffered record: [Wire.Reader.has] pinned the whole
   payload into the chunk buffer, so fields decode in place between
   [pos] and [limit]. *)
type br = {
  rd : Wire.Reader.t;
  mutable record : int;
  mutable pos : int;
  mutable limit : int;
}

let br_fail br msg = fail_record br.record msg

let br_varint br =
  let rec go shift acc =
    if br.pos >= br.limit then br_fail br "truncated record payload"
    else begin
      let b = Char.code (Bytes.unsafe_get br.rd.Wire.Reader.buf br.pos) in
      br.pos <- br.pos + 1;
      if shift > 56 && b > 0x7f then br_fail br "varint overflow"
      else begin
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b < 0x80 then acc else go (shift + 7) acc
      end
    end
  in
  go 0 0

let br_svarint br = Wire.unzigzag (br_varint br)

let br_bool br =
  if br.pos >= br.limit then br_fail br "truncated record payload";
  let b = Char.code (Bytes.unsafe_get br.rd.Wire.Reader.buf br.pos) in
  br.pos <- br.pos + 1;
  match b with
  | 0 -> false
  | 1 -> true
  | b -> br_fail br (Printf.sprintf "bad boolean byte %d" b)

let br_string br =
  let len = br_varint br in
  if len < 0 || br.pos + len > br.limit then br_fail br "truncated string";
  let s = Bytes.sub_string br.rd.Wire.Reader.buf br.pos len in
  br.pos <- br.pos + len;
  s

(* A bounded count before List.init keeps corrupt counts from
   allocating without limit: every element is at least one payload
   byte, so a legitimate count never exceeds the record length. *)
let br_count br what =
  let n = br_varint br in
  if n < 0 || n > br.limit - br.pos + 1 then
    br_fail br (Printf.sprintf "implausible %s count" what);
  n

let br_range br =
  let lo = br_svarint br in
  let len = br_varint br in
  try Range.of_len lo len with Invalid_argument msg -> br_fail br msg

let br_ranges br = List.init (br_count br "range") (fun _ -> br_range br)

(* Strict hex, mirroring Trace_io's kind-escape validation: any
   non-hex byte is a positioned error, and [int_of_string]'s laxness
   (underscores, nested "0x") never gets a say. *)
let br_hex_pid br what =
  let s = br_string br in
  if s = "" then br_fail br (Printf.sprintf "empty %s record" what);
  let v = ref 0 in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ ->
            br_fail br (Printf.sprintf "non-hex %s record: %S" what s)
      in
      if !v > max_int lsr 4 then
        br_fail br (Printf.sprintf "%s overflow: %S" what s);
      v := (!v lsl 4) lor d)
    s;
  !v

let read_manifest br =
  let m_shards = br_varint br in
  let m_pid_range = br_varint br in
  let backend_s = br_string br in
  let m_backend =
    match Store.backend_of_string backend_s with
    | Some b -> b
    | None -> br_fail br (Printf.sprintf "unknown backend %S" backend_s)
  in
  let m_with_origins = br_bool br in
  let ni = br_varint br in
  let nt = br_varint br in
  let untaint = br_bool br in
  let policy =
    try Policy.make ~untaint ~ni ~nt ()
    with Invalid_argument msg -> br_fail br msg
  in
  let m_sources = br_varint br in
  let m_tenants = br_varint br in
  if m_shards <= 0 then br_fail br "manifest: shards must be positive";
  if m_pid_range <= 0 then br_fail br "manifest: pid_range must be positive";
  if m_sources < 0 || m_tenants < 0 then br_fail br "manifest: negative count";
  {
    m_shards;
    m_pid_range;
    m_backend;
    m_with_origins;
    m_policy = policy;
    m_sources;
    m_tenants;
  }

let read_source br =
  let se_name = br_string br in
  let se_path = br_string br in
  let se_pid = br_hex_pid br "pid" in
  let se_orig_pid = br_hex_pid br "orig-pid" in
  let se_cursor = br_varint br in
  if se_cursor < 0 then br_fail br "negative cursor";
  { se_name; se_path; se_pid; se_orig_pid; se_cursor }

let read_prov br : Provenance.persisted =
  let ps_entries =
    List.init (br_count br "prov entry") (fun _ ->
        let pid = br_varint br in
        let label = br_string br in
        ((pid, label), br_ranges br))
  in
  let ps_windows =
    List.init (br_count br "prov window") (fun _ ->
        let pw_pid = br_varint br in
        let pw_ltlt = br_svarint br in
        let pw_nt_used = br_varint br in
        let pw_labels =
          List.init (br_count br "label") (fun _ -> br_string br)
        in
        let pw_opener_seq = br_svarint br in
        let pw_opener_range =
          if br_bool br then Some (br_range br) else None
        in
        {
          Provenance.pw_pid;
          pw_ltlt;
          pw_nt_used;
          pw_labels;
          pw_opener_seq;
          pw_opener_range;
        })
  in
  let ps_known_labels =
    List.init (br_count br "known label") (fun _ -> br_string br)
  in
  let ps_probes = br_varint br in
  { Provenance.ps_entries; ps_windows; ps_known_labels; ps_probes }

let read_tenant br : Engine.tenant_persisted =
  let tp_pid = br_varint br in
  let tp_name = br_string br in
  let tp_verdicts =
    List.init (br_count br "verdict") (fun _ ->
        let v_kind = br_string br in
        let v_flagged = br_bool br in
        let v_origins =
          List.init (br_count br "origin") (fun _ -> br_string br)
        in
        { Engine.v_kind; v_flagged; v_origins })
  in
  let taint_ops = br_varint br in
  let untaint_ops = br_varint br in
  let lookups = br_varint br in
  let tainted_loads = br_varint br in
  let max_tainted_bytes = br_varint br in
  let max_ranges = br_varint br in
  let events = br_varint br in
  let p_last_time = br_svarint br in
  let p_windows =
    List.init (br_count br "window") (fun _ ->
        let pid = br_varint br in
        let ltlt = br_svarint br in
        let nt_used = br_varint br in
        (pid, ltlt, nt_used))
  in
  let p_store =
    List.init (br_count br "store pid") (fun _ ->
        let pid = br_varint br in
        (pid, br_ranges br))
  in
  let p_prov = if br_bool br then Some (read_prov br) else None in
  {
    Engine.tp_pid;
    tp_name;
    tp_verdicts;
    tp_state =
      {
        Tracker.p_stats =
          {
            Tracker.taint_ops;
            untaint_ops;
            lookups;
            tainted_loads;
            max_tainted_bytes;
            max_ranges;
            events;
          };
        p_last_time;
        p_windows;
        p_store;
        p_prov;
      };
  }

let open_reader ic =
  let mlen = String.length magic in
  (match really_input_string ic mlen with
  | s when String.equal s magic -> ()
  | _ -> fail_record 0 "bad magic"
  | exception End_of_file -> fail_record 0 "bad magic (truncated)");
  (match input_char ic with
  | v when v = version -> ()
  | v ->
      fail_record 0
        (Printf.sprintf "unsupported snapshot version %C (want %C)" v version)
  | exception End_of_file -> fail_record 0 "bad magic (truncated)");
  { rd = Wire.Reader.create ic; record = 0; pos = 0; limit = 0 }

(* One record per pull; [None] only on EOF exactly at a record
   boundary.  Anything else — truncation, unknown tags, trailing bytes
   — fails with the record number, after every preceding record was
   already delivered. *)
let next br =
  let rd = br.rd in
  match Wire.Reader.varint ~first_eof_ok:true (fail_record (br.record + 1)) rd
  with
  | exception End_of_file -> None
  | len ->
      br.record <- br.record + 1;
      let fail msg = br_fail br msg in
      if len <= 0 then fail "empty record";
      if len > max_record_payload then fail "implausible record length";
      if not (Wire.Reader.has rd len) then
        fail (Printf.sprintf "truncated record (%d payload bytes)" len);
      br.pos <- rd.Wire.Reader.lo + 1;
      br.limit <- rd.Wire.Reader.lo + len;
      let tag = Char.code (Bytes.unsafe_get rd.Wire.Reader.buf rd.Wire.Reader.lo) in
      rd.Wire.Reader.lo <- rd.Wire.Reader.lo + len;
      let record =
        if tag = tag_manifest then R_manifest (read_manifest br)
        else if tag = tag_source then R_source (read_source br)
        else if tag = tag_tenant then R_tenant (read_tenant br)
        else fail (Printf.sprintf "unknown record tag %d" tag)
      in
      if br.pos <> br.limit then fail "trailing bytes in record";
      Some record

let iter path f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let br = open_reader ic in
      let rec go () =
        match next br with
        | None -> ()
        | Some r ->
            f r;
            go ()
      in
      go ())

let load path =
  let manifest = ref None in
  let sources = ref [] in
  let tenants = ref [] in
  let records = ref 0 in
  iter path (fun r ->
      incr records;
      match r with
      | R_manifest m ->
          if !records <> 1 then
            fail_record !records "manifest must be the first record";
          manifest := Some m
      | R_source se ->
          if !manifest = None then
            fail_record !records "source record before manifest";
          sources := se :: !sources
      | R_tenant tp ->
          if !manifest = None then
            fail_record !records "tenant record before manifest";
          tenants := tp :: !tenants);
  match !manifest with
  | None -> fail_record 0 "empty snapshot (no manifest)"
  | Some m ->
      let sources = List.rev !sources in
      let tenants = List.rev !tenants in
      (* Truncation at a record boundary reads as clean EOF; the
         manifest counts catch it. *)
      if List.length sources <> m.m_sources then
        fail_record !records
          (Printf.sprintf "truncated snapshot: expected %d source records, got %d"
             m.m_sources (List.length sources));
      if List.length tenants <> m.m_tenants then
        fail_record !records
          (Printf.sprintf "truncated snapshot: expected %d tenant records, got %d"
             m.m_tenants (List.length tenants));
      { manifest = m; sources; tenants }

(* --- engine glue (engine idle) ------------------------------------------ *)

let source_entries sources =
  List.map
    (fun (s : Ingest.source) ->
      {
        se_name = s.Ingest.src_name;
        se_path = Option.value s.Ingest.src_path ~default:"";
        se_pid = s.Ingest.src_pid;
        se_orig_pid = s.Ingest.src_orig_pid;
        se_cursor = Ingest.cursor s;
      })
    sources

let of_engine ?(sources = []) eng =
  let tenants = Engine.persist_tenants eng in
  {
    manifest =
      {
        m_shards = Engine.shards eng;
        m_pid_range = Engine.pid_range eng;
        m_backend = Engine.backend eng;
        m_with_origins = Engine.with_origins eng;
        m_policy = Engine.policy eng;
        m_sources = List.length sources;
        m_tenants = List.length tenants;
      };
    sources;
    tenants;
  }

let save ?sources eng path = write path (of_engine ?sources eng)

(* Restores are strict about config compatibility: a tenant persisted
   under one policy/backend/origins mode restored into an engine with
   another would silently diverge from the uninterrupted run — the one
   thing a durability layer must never do. *)
let restore_tenants eng t =
  let m = t.manifest in
  if Engine.policy eng <> m.m_policy then
    invalid_arg
      (Printf.sprintf "Snapshot.restore_tenants: engine policy %s <> snapshot %s"
         (Policy.to_string (Engine.policy eng))
         (Policy.to_string m.m_policy));
  if Engine.backend eng <> m.m_backend then
    invalid_arg "Snapshot.restore_tenants: store backend mismatch";
  if Engine.with_origins eng <> m.m_with_origins then
    invalid_arg "Snapshot.restore_tenants: origins mode mismatch";
  if Engine.pid_range eng <> m.m_pid_range then
    invalid_arg "Snapshot.restore_tenants: pid_range mismatch";
  List.iter (Engine.restore_tenant eng) t.tenants
