(** Durable engine state: the versioned [PIFTSNAP1] binary snapshot
    format.

    A snapshot is a manifest record (engine config: shard count,
    pid-block width, store backend, origins mode, policy, and expected
    record counts), one record per ingest source (trace path, the
    tenant pid block it maps to, and the ingest {e cursor} — items the
    engine had fully processed when the snapshot was taken), and one
    record per tenant ({!Engine.tenant_persisted}: name, verdict log,
    and the complete tracker stack — store intervals for any backend,
    windows, stats and peaks, provenance origin sets).

    The coding is the same varint/zigzag layer as [Trace_io]'s binary
    trace format ({!Pift_util.Wire}), with the same defensive
    discipline: length-prefixed records, capped payloads and varints,
    and every corrupt byte surfacing as a positioned
    [Failure "Snapshot: record N: ..."] — never a bare exception.
    {!write} is atomic (temp file + rename), so a crash during a
    snapshot cadence leaves the previous snapshot intact: recovery
    always finds a complete file.

    Restore contract: an engine built from the manifest's policy /
    backend / origins mode / pid_range (the shard count is free — see
    {!Engine.restore_tenant}) with every tenant restored and every
    source re-opened and {!Ingest.skip}ped to its cursor resumes to
    byte-identical verdicts, origins, and stats versus the
    uninterrupted run. *)

type manifest = {
  m_shards : int;  (** shard count at snapshot time (informational) *)
  m_pid_range : int;
  m_backend : Pift_core.Store.backend;
  m_with_origins : bool;
  m_policy : Pift_core.Policy.t;
  m_sources : int;  (** expected source records *)
  m_tenants : int;  (** expected tenant records *)
}

type source_entry = {
  se_name : string;
  se_path : string;  (** [""] for in-memory sources *)
  se_pid : int;  (** assigned engine pid (tenant block) *)
  se_orig_pid : int;  (** pid recorded in the trace *)
  se_cursor : int;  (** items fully processed at snapshot time *)
}

type t = {
  manifest : manifest;
  sources : source_entry list;
  tenants : Engine.tenant_persisted list;  (** sorted by pid *)
}

type record =
  | R_manifest of manifest
  | R_source of source_entry
  | R_tenant of Engine.tenant_persisted

(** {1 Files} *)

val write : string -> t -> unit
(** Atomic: encode to [path ^ ".tmp"], then rename over [path]. *)

val iter : string -> (record -> unit) -> unit
(** Stream records in file order.  On a corrupt file, every intact
    prefix record is delivered to [f] before the positioned
    [Failure "Snapshot: record N: ..."] raises. *)

val load : string -> t
(** {!iter} plus structure validation: the manifest must be record 1,
    and the source/tenant record counts must match it — truncation at
    a record boundary (invisible to the streaming reader) fails here. *)

(** {1 Engine glue}

    Engine-idle only, like the rest of the admin surface. *)

val source_entries : Ingest.source list -> source_entry list
(** Capture each source's path, pid mapping and current cursor. *)

val of_engine : ?sources:source_entry list -> Engine.t -> t
(** Snapshot every resident tenant plus the engine config manifest. *)

val save : ?sources:source_entry list -> Engine.t -> string -> unit
(** [write path (of_engine ?sources eng)]. *)

val restore_tenants : Engine.t -> t -> unit
(** Restore every tenant record into [eng] via
    {!Engine.restore_tenant}.  Raises [Invalid_argument] if the
    engine's policy, backend, origins mode, or pid_range disagree with
    the manifest — a mismatched restore would silently diverge from
    the uninterrupted run, which a durability layer must never do.
    The shard count may differ. *)
