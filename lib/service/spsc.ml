(* Bounded single-producer single-consumer batch queue: the link between
   the engine's ingest front (pool slot 0) and one shard consumer.  The
   unit of transfer is a batch (an array of items), so the mutex is
   taken once per batch, not per event.

   Backpressure is the producer's choice per push: block until the
   consumer frees a slot (the default, deterministic — nothing is ever
   lost, the producer just runs at the slowest shard's pace), or drop
   the batch and count the items ([dropped] is surfaced through the
   shard's registry and telemetry).

   [abort] is the failure path: a consumer that dies mid-stream aborts
   its queue so the producer cannot block forever against a reader that
   will never come back — subsequent pushes drop, pops return [None],
   and the pool join re-raises the consumer's exception. *)

type 'a t = {
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  buf : 'a array Queue.t;  (* of batches *)
  capacity : int;  (* max queued batches *)
  mutable closed : bool;  (* producer finished *)
  mutable aborted : bool;  (* consumer died *)
  mutable dropped : int;  (* items (not batches) dropped *)
  mutable max_depth : int;  (* peak queued batches *)
}

type push_result = Pushed | Dropped

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  {
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    buf = Queue.create ();
    capacity;
    closed = false;
    aborted = false;
    dropped = 0;
    max_depth = 0;
  }

let push t ~drop_when_full batch =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Spsc.push: queue closed"
  end;
  let result =
    if t.aborted then begin
      t.dropped <- t.dropped + Array.length batch;
      Dropped
    end
    else if drop_when_full && Queue.length t.buf >= t.capacity then begin
      t.dropped <- t.dropped + Array.length batch;
      Dropped
    end
    else begin
      while Queue.length t.buf >= t.capacity && not t.aborted do
        Condition.wait t.not_full t.mu
      done;
      if t.aborted then begin
        t.dropped <- t.dropped + Array.length batch;
        Dropped
      end
      else begin
        Queue.add batch t.buf;
        let depth = Queue.length t.buf in
        if depth > t.max_depth then t.max_depth <- depth;
        Condition.signal t.not_empty;
        Pushed
      end
    end
  in
  Mutex.unlock t.mu;
  result

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

let abort t =
  Mutex.lock t.mu;
  t.aborted <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu

let pop t =
  Mutex.lock t.mu;
  let rec go () =
    if t.aborted then None
    else if not (Queue.is_empty t.buf) then begin
      let b = Queue.take t.buf in
      Condition.signal t.not_full;
      Some b
    end
    else if t.closed then None
    else begin
      Condition.wait t.not_empty t.mu;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock t.mu;
  r

let locked t f =
  Mutex.lock t.mu;
  let v = f () in
  Mutex.unlock t.mu;
  v

let length t = locked t (fun () -> Queue.length t.buf)
let dropped t = locked t (fun () -> t.dropped)
let max_depth t = locked t (fun () -> t.max_depth)
